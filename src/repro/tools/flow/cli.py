"""Command line front end: ``python -m repro.tools.flow [paths...]``.

Exit codes match the per-file lint: 0 clean (or all findings
baselined), 1 new findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.tools.flow.baseline import (
    load_baseline,
    partition,
    save_baseline,
)
from repro.tools.flow.runner import (
    analyze_paths,
    interprocedural_codes,
)
from repro.tools.lint.engine import (
    REGISTRY,
    collect_files,
    resolve_codes,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.flow",
        description=(
            "Whole-program flow analysis for the federation's "
            "interprocedural invariants (ANN007..ANN010; DESIGN §15)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all "
             "interprocedural rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the interprocedural rules and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new "
             "ones (a missing FILE is an empty baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE with the current findings and "
             "exit 0",
    )
    parser.add_argument(
        "--include-fixtures",
        action="store_true",
        help=(
            "also analyze 'fixtures' directories (deliberate-violation "
            "corpora, excluded by default)"
        ),
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code in sorted(interprocedural_codes()):
        rule = REGISTRY[code]
        lines.append(f"{code}  {rule.title}")
        if rule.rationale:
            lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0
    if options.update_baseline and not options.baseline:
        print(
            "error: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2

    flow_codes = interprocedural_codes()
    select = None
    if options.select:
        try:
            select = resolve_codes(options.select.split(","))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        per_file = sorted(select - flow_codes)
        if per_file:
            print(
                f"error: {', '.join(per_file)} are per-file rules; "
                f"run python -m repro.tools.lint for them",
                file=sys.stderr,
            )
            return 2

    files = collect_files(
        options.paths, include_fixtures=options.include_fixtures
    )
    if not files:
        print(
            f"error: no Python files under {' '.join(options.paths)}",
            file=sys.stderr,
        )
        return 2

    diagnostics = analyze_paths(
        options.paths,
        select=select,
        include_fixtures=options.include_fixtures,
    )

    if options.update_baseline:
        count = save_baseline(options.baseline, diagnostics)
        plural = "ies" if count != 1 else "y"
        print(
            f"baseline {options.baseline} rewritten with {count} "
            f"entr{plural}",
            file=sys.stderr,
        )
        return 0

    if options.baseline:
        try:
            baseline = load_baseline(options.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        diagnostics, stale = partition(diagnostics, baseline)
        for path, code, message in stale:
            print(
                f"note: stale baseline entry (fixed): "
                f"{path}: {code} {message}",
                file=sys.stderr,
            )

    for diagnostic in diagnostics:
        print(diagnostic.render())
    if diagnostics:
        plural = "s" if len(diagnostics) != 1 else ""
        print(
            f"{len(diagnostics)} finding{plural} in "
            f"{len(files)} files analyzed",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
