"""Deterministic pseudo-random streams for synthetic corpora.

All synthetic data in this reproduction (loci, ontology terms, disease
entries, cross-links, injected conflicts) is generated from seeded
streams so every experiment is exactly reproducible.  The class wraps
:class:`random.Random` and adds the handful of draws the generators
need, plus cheap *substream* derivation so independent generators fed
from one master seed never share state.
"""

import random
import zlib


class DeterministicRng:
    """A seeded random stream with biology-flavoured convenience draws."""

    #: Alphabet used for synthetic gene symbols (upper-case, no ambiguous
    #: characters, matching the look of HGNC-style symbols).
    _SYMBOL_ALPHABET = "ABCDEFGHKLMNPRSTUWXYZ"

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def substream(self, label):
        """Derive an independent stream for ``label``.

        The derivation is a pure function of (seed, label) using a
        *stable* hash (crc32) — the built-in ``hash`` is salted per
        process and would make "deterministic" corpora differ between
        runs.
        """
        digest = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        return DeterministicRng(digest & 0x7FFFFFFF)

    # -- thin pass-throughs -------------------------------------------------

    def randint(self, low, high):
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, sequence):
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(sequence)

    def sample(self, population, k):
        """k distinct elements, uniformly without replacement."""
        return self._random.sample(population, k)

    def shuffle(self, items):
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def uniform(self, low, high):
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    # -- domain draws -------------------------------------------------------

    def gene_symbol(self):
        """A synthetic HGNC-style gene symbol, e.g. ``TPK3`` or ``BRD11A``."""
        stem_length = self.randint(2, 4)
        stem = "".join(
            self.choice(self._SYMBOL_ALPHABET) for _ in range(stem_length)
        )
        number = self.randint(1, 99)
        suffix = self.choice(["", "", "", "A", "B", "L"])
        return f"{stem}{number}{suffix}"

    def map_position(self):
        """A synthetic cytogenetic map position, e.g. ``7q31.2``."""
        chromosome = self.choice(
            [str(n) for n in range(1, 23)] + ["X", "Y"]
        )
        arm = self.choice(["p", "q"])
        band = self.randint(11, 36)
        if self.random() < 0.5:
            sub_band = self.randint(1, 3)
            return f"{chromosome}{arm}{band}.{sub_band}"
        return f"{chromosome}{arm}{band}"

    def sentence(self, words, minimum=4, maximum=10):
        """A synthetic description sentence drawn from a word pool."""
        count = self.randint(minimum, maximum)
        chosen = [self.choice(words) for _ in range(count)]
        text = " ".join(chosen)
        return text[0].upper() + text[1:]

    def bernoulli(self, probability):
        """True with the given probability."""
        return self.random() < probability
