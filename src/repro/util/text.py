"""Text-formatting helpers for renderers and serializers."""


def indent_block(text, spaces):
    """Indent every non-empty line of ``text`` by ``spaces`` spaces."""
    pad = " " * spaces
    return "\n".join(
        pad + line if line else line for line in text.splitlines()
    )


def box(title, body_lines, width=72):
    """Render a bordered ASCII box used by the Figure-5 view renderers."""
    horizontal = "+" + "-" * (width - 2) + "+"
    lines = [horizontal, f"| {title:<{width - 4}} |", horizontal]
    for line in body_lines:
        for chunk in _wrap(line, width - 4):
            lines.append(f"| {chunk:<{width - 4}} |")
    lines.append(horizontal)
    return "\n".join(lines)


def _wrap(line, width):
    """Greedy word wrap that never returns an empty list."""
    if len(line) <= width:
        return [line]
    words = line.split(" ")
    chunks = []
    current = ""
    for word in words:
        candidate = f"{current} {word}".strip()
        if len(candidate) <= width:
            current = candidate
        else:
            if current:
                chunks.append(current)
            while len(word) > width:
                chunks.append(word[:width])
                word = word[width:]
            current = word
    if current:
        chunks.append(current)
    return chunks or [""]


def table(headers, rows, padding=2):
    """Render an aligned plain-text table.

    Used by the Table-1 regeneration harness so the comparison matrix
    prints with the same row/column layout as the paper.
    """
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))
    pad = " " * padding

    def render_row(cells):
        return pad.join(
            str(cells[index] if index < len(cells) else "").ljust(widths[index])
            for index in range(columns)
        ).rstrip()

    separator = pad.join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
