"""Wall-clock timing helper used by the benchmark harness."""

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(100))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start = None
        self.elapsed = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.elapsed = time.perf_counter() - self._start
        return False
