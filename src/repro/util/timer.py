"""Wall-clock timing helper used by the benchmark harness.

Timings are read through the :mod:`repro.util.clock` seam, so bench
timings and trace timings share one clock source and tests can assert
exact elapsed values by installing a
:class:`~repro.util.clock.FakeClock`.
"""

from __future__ import annotations

from types import TracebackType
from typing import Optional, Type

from repro.util.clock import Clock, default_clock


class Timer:
    """Context manager measuring elapsed monotonic seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(100))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else default_clock()
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._clock.now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc_value: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> bool:
        if self._start is not None:
            self.elapsed = self._clock.now() - self._start
        return False
