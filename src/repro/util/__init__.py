"""Shared utilities for the ANNODA reproduction.

Small, dependency-free helpers used across every subsystem: object
identifier allocation, deterministic pseudo-random streams, error
hierarchy roots, text formatting, and a wall-clock timer.
"""

from repro.util.clock import Clock, FakeClock, MonotonicClock, default_clock
from repro.util.errors import (
    AnnodaError,
    ConfigurationError,
    DataFormatError,
    IntegrationError,
    QueryError,
)
from repro.util.oids import OidAllocator
from repro.util.rng import DeterministicRng
from repro.util.timer import Timer

__all__ = [
    "AnnodaError",
    "Clock",
    "ConfigurationError",
    "DataFormatError",
    "DeterministicRng",
    "FakeClock",
    "IntegrationError",
    "MonotonicClock",
    "OidAllocator",
    "QueryError",
    "Timer",
    "default_clock",
]
