"""Per-request deadlines and cooperative cancellation.

A :class:`RequestBudget` is created when a request enters the system
(at service admission, or by any caller of
:meth:`repro.core.annoda.Annoda.ask`) and threaded through the
mediator and executor down to every
:class:`~repro.mediator.fetch.FetchRequest` the execution issues.  The
fetcher consults it before each attempt: an expired or cancelled
budget turns the fetch into an immediate ``timeout`` reply, which the
existing :class:`~repro.mediator.fetch.FederationPolicy` then either
degrades (partial answer) or raises — so a deadline-expired request
*degrades within one scheduling quantum* instead of hanging a worker.

Time comes from the :mod:`repro.util.clock` seam, so deadline logic is
testable against a :class:`~repro.util.clock.FakeClock` and never
reads the wall clock.
"""

from __future__ import annotations

from typing import Optional

from repro.util.clock import Clock, default_clock
from repro.util.locks import new_lock


class RequestBudget:
    """One request's remaining time plus its cancellation flag.

    ``deadline`` is relative seconds from construction (``None``: no
    deadline — the budget then only carries the cancellation flag).
    Thread-safe: the executor's worker threads read it concurrently
    while a service shutdown may cancel it.
    """

    __slots__ = ("_clock", "_started", "_deadline", "_cancelled",
                 "_reason", "_lock")

    def __init__(self, deadline: Optional[float] = None,
                 clock: Optional[Clock] = None) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds")
        self._clock = clock if clock is not None else default_clock()
        self._started = self._clock.now()
        self._deadline = (
            None if deadline is None else self._started + deadline
        )
        self._cancelled = False
        self._reason: Optional[str] = None
        self._lock = new_lock("RequestBudget._lock")

    # -- cancellation ------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Cooperatively cancel: every later :meth:`remaining` is 0."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def reason(self) -> Optional[str]:
        """Why the budget was cancelled (``None`` while live)."""
        with self._lock:
            return self._reason

    # -- time --------------------------------------------------------------

    @property
    def deadline(self) -> Optional[float]:
        """The relative deadline this budget was created with."""
        if self._deadline is None:
            return None
        return self._deadline - self._started

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock.now() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left, floored at 0; ``None`` when unbounded.

        A cancelled budget always has 0 seconds left, even without a
        deadline — cancellation is "the deadline is now".
        """
        with self._lock:
            cancelled = self._cancelled
        if cancelled:
            return 0.0
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock.now())

    @property
    def expired(self) -> bool:
        """True once no time remains (deadline passed or cancelled)."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def describe(self) -> str:
        with self._lock:
            cancelled, reason = self._cancelled, self._reason
        if cancelled:
            return f"request cancelled: {reason}"
        if self._deadline is None:
            return "unbounded request budget"
        return (
            f"request deadline of {self.deadline:.3f}s "
            f"({'expired' if self.expired else 'live'})"
        )

    def __repr__(self) -> str:
        return f"RequestBudget({self.describe()})"
