"""Root exception hierarchy for the ANNODA reproduction.

Every subsystem derives its own exceptions from :class:`AnnodaError` so
that callers embedding the library can catch one base class at the
integration boundary.
"""


class AnnodaError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(AnnodaError):
    """A component was wired or configured inconsistently."""


class DataFormatError(AnnodaError):
    """A source file or record did not conform to its declared format."""

    def __init__(self, message, line_number=None, source_name=None):
        self.line_number = line_number
        self.source_name = source_name
        prefix = ""
        if source_name is not None:
            prefix += f"[{source_name}] "
        if line_number is not None:
            prefix += f"line {line_number}: "
        super().__init__(prefix + message)


class QueryError(AnnodaError):
    """A query was malformed or could not be evaluated."""


class IntegrationError(AnnodaError):
    """The mediator could not combine results from member sources."""
