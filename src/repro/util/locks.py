"""The federation's lock-construction seam.

Every lock guarding shared fetch-path state (per-source index mutexes,
the fetcher's pool lock, fault-injection counters) is created through
:func:`new_lock` instead of ``threading.Lock()`` directly, and every
shared counter dict through :func:`make_counters`.  In production both
return the plain stdlib objects with zero overhead; the concurrency
sanitizer (:mod:`repro.tools.racecheck`) installs instrumented
factories here for the duration of a checked test run, so the code
under test never needs monkeypatching or test-only branches.

The label passed to :func:`new_lock` names the *allocation site*
(``"LocusLinkStore._fetch_mutex"``), which is what the sanitizer's
lock-order reports show; the lock object itself is what cycle
detection runs on.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

#: A lock factory takes the site label and returns a lock-like object
#: (``acquire``/``release``/context manager).
LockFactory = Callable[[str], Any]

#: A counter factory takes the initial mapping, the owning lock, and
#: the owner label, and returns a mutable mapping.
CounterFactory = Callable[[Dict[str, int], Any, str], Dict[str, int]]


def _default_lock_factory(label: str) -> threading.Lock:
    return threading.Lock()


def _default_counter_factory(
    initial: Dict[str, int], lock: Any, owner: str
) -> Dict[str, int]:
    return dict(initial)


_lock_factory: LockFactory = _default_lock_factory
_counter_factory: CounterFactory = _default_counter_factory


def new_lock(label: str) -> Any:
    """A mutex for ``label`` from the currently installed factory."""
    return _lock_factory(label)


def make_counters(
    initial: Dict[str, int], lock: Any, owner: str
) -> Dict[str, int]:
    """A shared counter mapping guarded (by convention) by ``lock``.

    The default is a plain dict; under the race checker the returned
    mapping audits every write against the owning lock.
    """
    return _counter_factory(initial, lock, owner)


def install(
    lock_factory: Optional[LockFactory] = None,
    counter_factory: Optional[CounterFactory] = None,
) -> Tuple[LockFactory, CounterFactory]:
    """Swap in instrumented factories; returns the previous pair so
    the caller can restore them (see :func:`restore`)."""
    global _lock_factory, _counter_factory
    previous = (_lock_factory, _counter_factory)
    if lock_factory is not None:
        _lock_factory = lock_factory
    if counter_factory is not None:
        _counter_factory = counter_factory
    return previous


def restore(
    previous: Tuple[LockFactory, CounterFactory],
) -> None:
    """Reinstall a factory pair captured by :func:`install`."""
    global _lock_factory, _counter_factory
    _lock_factory, _counter_factory = previous


def reset() -> None:
    """Back to the zero-overhead production factories."""
    global _lock_factory, _counter_factory
    _lock_factory = _default_lock_factory
    _counter_factory = _default_counter_factory
