"""Object identifier (oid) allocation.

OEM gives every object a unique object identifier, written ``&N`` in the
paper's Figure 3 (``LocusLink`` is ``&1``, ``LocusID`` is ``&2``, the new
answer object of section 4.1 is ``&442``).  :class:`OidAllocator` hands
out those identifiers: monotonically increasing integers rendered in the
paper's ``&N`` notation.
"""

from repro.util.errors import ConfigurationError


class OidAllocator:
    """Allocate unique, monotonically increasing object identifiers.

    Parameters
    ----------
    start:
        First oid value to hand out.  Defaults to 1 so a fresh graph
        reproduces the paper's Figure 3 numbering exactly.
    """

    def __init__(self, start=1):
        if start < 1:
            raise ConfigurationError(f"oid numbering starts at 1, got {start}")
        self._next = start

    def allocate(self):
        """Return the next unused oid as an integer."""
        oid = self._next
        self._next += 1
        return oid

    def reserve(self, oid):
        """Mark ``oid`` (and everything below it) as used.

        Used when importing a serialized graph whose oids must be kept
        stable: subsequent :meth:`allocate` calls will not collide.
        """
        if oid >= self._next:
            self._next = oid + 1

    @property
    def next_oid(self):
        """The oid the next :meth:`allocate` call would return."""
        return self._next

    @staticmethod
    def render(oid):
        """Render an oid in the paper's ``&N`` notation."""
        return f"&{oid}"

    @staticmethod
    def parse(text):
        """Parse the ``&N`` notation back into an integer oid."""
        stripped = text.strip()
        if not stripped.startswith("&"):
            raise ValueError(f"oid literal must start with '&': {text!r}")
        body = stripped[1:]
        if not body.isdigit():
            raise ValueError(f"oid literal must be '&' + digits: {text!r}")
        return int(body)
