"""The federation's clock-construction seam.

Every module that timestamps work — the benchmark harness's
:class:`~repro.util.timer.Timer`, the query flight recorder
(:mod:`repro.trace`) and anything else that measures elapsed seconds —
reads time through a :class:`Clock` instead of calling
``time.perf_counter()`` directly.  In production the default
:class:`MonotonicClock` is exactly ``perf_counter`` with zero
overhead; tests install a :class:`FakeClock` to make timings exact and
assertable, the same pattern as the lock seam in
:mod:`repro.util.locks`.

The seam keeps traced modules ANN003-clean: no wall-clock reads ever
enter answer-affecting code, only monotonic accounting time, and the
one place that decides *which* monotonic time is this module.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.util.locks import new_lock


class Clock:
    """Monotonic seconds provider (``now()`` only ever moves forward)."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Pause the calling thread for ``seconds``.

        Production clocks really sleep; a :class:`FakeClock` advances
        itself instead, so retry backoff and injected latency
        fast-forward in tests rather than burning wall time.
        """
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A deterministic clock tests drive by hand.

    ``tick`` seconds elapse on every :meth:`now` read (so consecutive
    reads are strictly increasing when ``tick > 0``); :meth:`advance`
    jumps time forward explicitly.  Reads and advances are
    lock-protected so concurrent fetch workers observe a consistent,
    monotonic sequence.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError("tick must be non-negative")
        self._now = start
        self._tick = tick
        self._lock = new_lock("FakeClock._lock")

    def now(self) -> float:
        with self._lock:
            value = self._now
            self._now += self._tick
            return value

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Fake sleeping is instant: the clock jumps, no thread parks.

        Backoff loops and latency injection written against the seam
        therefore cost zero wall time under a fake clock while still
        observing the right elapsed-seconds arithmetic.
        """
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.advance(seconds)


#: The shared production clock instance.
MONOTONIC_CLOCK = MonotonicClock()

_default_clock: Clock = MONOTONIC_CLOCK


def default_clock() -> Clock:
    """The currently installed process-default clock."""
    return _default_clock


def install(clock: Clock) -> Clock:
    """Swap the default clock; returns the previous one so the caller
    can restore it (see :func:`restore`)."""
    global _default_clock
    previous = _default_clock
    _default_clock = clock
    return previous


def restore(previous: Optional[Clock]) -> None:
    """Reinstall a clock captured by :func:`install`."""
    global _default_clock
    _default_clock = previous if previous is not None else MONOTONIC_CLOCK


def reset() -> None:
    """Back to the zero-overhead production clock."""
    global _default_clock
    _default_clock = MONOTONIC_CLOCK
