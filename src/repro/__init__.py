"""ANNODA reproduction: federated integration of molecular-biological
annotation data.

This package reproduces the system described in *"ANNODA: Tool for
integrating Molecular-biological Annotation Data"* (Prompramote & Chen,
ICDE 2005 Workshops): an extended Object Exchange Model, the Lorel
query language, wrapped heterogeneous annotation sources (LocusLink,
GO, OMIM), MDSM schema matching via the Hungarian method, a federated
mediator with ANNODA-GML global model, interactive web-link navigation,
and a biological-question interface.

Quickstart::

    from repro import Annoda
    annoda = Annoda.with_default_sources(seed=7)
    answer = annoda.ask(
        "Find LocusLink genes annotated with some GO function "
        "but not associated with some OMIM disease"
    )
"""

__version__ = "1.0.0"

# The facade import is at the bottom of the dependency graph; guard it so
# that partially built checkouts can still import subpackages directly.
try:
    from repro.core import Annoda, AnnodaConfig
except ImportError:  # pragma: no cover - only during partial builds
    Annoda = None
    AnnodaConfig = None

# The stable planning surface: the query type, the plan IR layers and
# the optimizer that connects them.
try:
    from repro.mediator import (
        GlobalQuery,
        LogicalPlan,
        Optimizer,
        OptimizerOptions,
        PhysicalPlan,
    )
except ImportError:  # pragma: no cover - only during partial builds
    GlobalQuery = None
    LogicalPlan = None
    Optimizer = None
    OptimizerOptions = None
    PhysicalPlan = None

# The service surface: ANNODA as a long-lived, admission-controlled
# HTTP query server (see DESIGN §14).
try:
    from repro.service import (
        AnnodaService,
        ServiceConfig,
        ServiceRequest,
        ServiceResponse,
        serve,
    )
except ImportError:  # pragma: no cover - only during partial builds
    AnnodaService = None
    ServiceConfig = None
    ServiceRequest = None
    ServiceResponse = None
    serve = None

__all__ = [
    "Annoda",
    "AnnodaConfig",
    "AnnodaService",
    "GlobalQuery",
    "LogicalPlan",
    "Optimizer",
    "OptimizerOptions",
    "PhysicalPlan",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "serve",
    "__version__",
]
