"""Regeneration of the paper's Figures 1-5 as runnable artifacts."""

from repro.mediator.gml import ROOT_NAME
from repro.oem.serialize import write_figure3
from repro.util.text import box


class FigureGenerator:
    """Render each figure from a live :class:`~repro.core.Annoda`."""

    def __init__(self, annoda):
        self.annoda = annoda

    # -- Figure 1: architecture -------------------------------------------------

    def figure1(self):
        """The component wiring of Figure 1, read off the live system."""
        mediator = self.annoda.mediator
        lines = ["Application / user interface",
                 "  |",
                 "Mediator"]
        lines.append("  |- Query manager (decompose -> optimize -> execute)")
        lines.append("  |- ANNODA-GML global model")
        lines.append("  |- Mapping module")
        lines.append("  |    |- Schema matching approach: MDSM "
                     "(Hungarian method)")
        transforms = mediator.mapping_module.transforms.names()
        lines.append(
            f"  |    |- Transformation calls: {', '.join(transforms)}"
        )
        lines.append("  |    |- Annotation database descriptions:")
        for source_name in mediator.sources():
            lines.append(
                f"  |    |    {mediator.mapping_module.description(source_name)}"
            )
        lines.append("  |- ANNODA-OML local models")
        lines.append("  |")
        for source_name in mediator.sources():
            wrapper = mediator.wrapper(source_name)
            lines.append(
                f"  Wrapper[{source_name}] -> {wrapper.entry_label} "
                f"entries ({wrapper.count()})"
            )
        return box("Figure 1: Architecture of ANNODA", lines, width=76)

    # -- Figure 2/3: the LocusLink OML fragment ------------------------------------

    def figure2(self):
        """The OML graph of one LocusLink fragment: vertices + edges."""
        graph, entry = self._sample_locus_entry()
        lines = ["objects (vertices):"]
        for _path, obj in graph.walk(entry):
            if obj.is_atomic:
                lines.append(
                    f"  &{obj.oid} [{obj.type}] = {obj.value!r}"
                )
            else:
                lines.append(f"  &{obj.oid} [Complex]")
        lines.append("")
        lines.append("attributes (edges):")
        seen = set()
        for _path, obj in graph.walk(entry):
            if obj.is_complex:
                for ref in obj.references:
                    edge = (obj.oid, ref.label, ref.oid)
                    if edge not in seen:
                        seen.add(edge)
                        lines.append(
                            f"  &{obj.oid} --{ref.label}--> &{ref.oid}"
                        )
        return box(
            "Figure 2: ANNODA-OML fragment of the LocusLink data model",
            lines,
            width=76,
        )

    def figure3(self):
        """The indented text serialization of the same fragment."""
        graph, entry = self._sample_locus_entry()
        return write_figure3(graph, "LocusLink", entry)

    def _sample_locus_entry(self):
        from repro.oem.graph import OEMGraph

        wrapper = self.annoda.mediator.wrapper("LocusLink")
        from repro.mediator.fetch import FetchRequest

        record = wrapper.fetch(FetchRequest(purpose="figure-sample"))[0]
        graph = OEMGraph("figure2")
        entry = wrapper.build_entry(graph, record)
        graph.set_root("LocusLink", entry)
        return graph, entry

    # -- Figure 4: the GML model ------------------------------------------------------

    def figure4(self):
        graph, root = self.annoda.gml()
        return write_figure3(graph, ROOT_NAME, root)

    # -- Figure 5: the three interface views -------------------------------------------

    def figure5a(self, question=None):
        question = question or self.annoda.catalog.figure5b()
        return self.annoda.render_query_form(question)

    def figure5b(self, limit=15):
        result = self.annoda.ask(self.annoda.catalog.figure5b())
        return self.annoda.render_integrated_view(result, limit=limit)

    def figure5c(self):
        result = self.annoda.ask(self.annoda.catalog.figure5b())
        gene = result.graph.children(result.root, "Gene")[0]
        links = self.annoda.navigator.links_of(result.graph, gene)
        view = self.annoda.navigator.follow(links[0])
        return self.annoda.render_object_view(view)

    def all_figures(self):
        """Every figure, keyed by its paper number."""
        return {
            "figure1": self.figure1(),
            "figure2": self.figure2(),
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure5a": self.figure5a(),
            "figure5b": self.figure5b(),
            "figure5c": self.figure5c(),
        }
