"""Answer-quality metrics against corpus ground truth."""


def answer_quality(answer_ids, expected_ids):
    """Precision / recall / F1 / error counts of an id-set answer.

    ``errors`` counts both false positives and false negatives — the
    quantity behind the Table-1 row *"incorrectness due to
    inconsistent and incompatible data"*.
    """
    answer = set(answer_ids)
    expected = set(expected_ids)
    true_positive = len(answer & expected)
    false_positive = len(answer - expected)
    false_negative = len(expected - answer)
    precision = true_positive / len(answer) if answer else (
        1.0 if not expected else 0.0
    )
    recall = true_positive / len(expected) if expected else 1.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "false_positives": false_positive,
        "false_negatives": false_negative,
        "errors": false_positive + false_negative,
    }
