"""ANNODA adapted to the baseline
:class:`~repro.baselines.interfaces.IntegrationSystem` contract, so the
Table-1 and architecture benchmarks compare all four columns through
one interface."""

from repro.baselines.interfaces import IntegrationSystem, SystemTraits
from repro.mediator.decompose import GlobalQuery, LinkConstraint

_TRAITS = SystemTraits(
    shields_source_details=True,
    global_schema_model="semistructured",
    single_access_point=True,
    requires_query_language_knowledge=False,
    comprehensive_query_capability=True,
    operations_on="integrated view",
    reorganizes_results=True,
    reconciles_results=True,
    handles_uncertainty=False,
    integrates_via_global_schema=True,
    supports_annotations=True,
    self_describing_model=True,
    integrates_self_generated_data=True,
    new_evaluation_functions=True,
    archival_functionality=False,
)


class AnnodaSystem(IntegrationSystem):
    """The federated column of Table 1, backed by a live
    :class:`~repro.core.Annoda` instance."""

    name = "ANNODA"
    approach = "federated databases"

    def __init__(self, annoda):
        self.annoda = annoda

    def traits(self):
        return _TRAITS

    def integrated_gene_disease_query(self):
        # Live execution: architecture comparisons measure federated
        # work, not the result cache.
        result = self.annoda.ask(
            self.annoda.catalog.figure5b(),
            enrich_links=False,
            use_cache=False,
        )
        return set(result.gene_ids()), {
            "rows_shipped": result.stats.total_rows_fetched(),
            "reconciled": True,
            "conflicts_observed": result.reconciliation.count(),
            "wall_seconds": result.stats.wall_seconds,
        }

    def disease_association_query(self):
        query = GlobalQuery(
            anchor_source="LocusLink",
            links=(
                LinkConstraint(
                    "OMIM", "include", via="DiseaseID", symbol_join=True
                ),
            ),
        )
        result = self.annoda.ask(
            query, enrich_links=False, use_cache=False
        )
        return set(result.gene_ids()), {
            "rows_shipped": result.stats.total_rows_fetched(),
            "reconciled": True,
            "conflicts_observed": result.reconciliation.count(),
            "wall_seconds": result.stats.wall_seconds,
        }
