"""Evaluation harness: Table 1, the figures, and answer-quality metrics.

Everything the paper's evaluation section shows is regenerated here:
:mod:`~repro.evaluation.table1` rebuilds the comparison matrix from the
*implemented* systems (declared traits cross-checked by behavioural
probes), :mod:`~repro.evaluation.figures` re-renders Figures 1-5, and
:mod:`~repro.evaluation.metrics` scores answers against corpus ground
truth.
"""

from repro.evaluation.annoda_system import AnnodaSystem
from repro.evaluation.figures import FigureGenerator
from repro.evaluation.metrics import answer_quality
from repro.evaluation.table1 import Table1, build_table1

__all__ = [
    "AnnodaSystem",
    "FigureGenerator",
    "Table1",
    "answer_quality",
    "build_table1",
]
