"""Regeneration of Table 1: the four-system comparison matrix.

Each row of the paper's Table 1 is a criterion; each cell a phrase
describing how one system addresses it.  This module renders the cell
phrases *from the implemented systems' traits* — and, for the claims
that are behavioural rather than structural (reconciliation,
freshness/staleness, extensibility), verifies the trait with a live
probe before printing, so the regenerated table is evidence, not
assertion.
"""

from dataclasses import dataclass

from repro.baselines.multidatabase import (
    DiscoveryLinkSystem,
    K2KleisliSystem,
)
from repro.baselines.warehouse import WarehouseSystem
from repro.core.annoda import Annoda
from repro.evaluation.annoda_system import AnnodaSystem
from repro.evaluation.metrics import answer_quality
from repro.util.errors import IntegrationError
from repro.util.text import table
from repro.wrappers import PubmedLikeWrapper, default_wrappers


@dataclass(frozen=True)
class Criterion:
    """One Table-1 row: the paper's row label plus a cell renderer."""

    label: str
    render_cell: object  # SystemTraits -> str


def _schema_cell(traits):
    return {
        "object-oriented": "Global schema using object-oriented model",
        "relational": "Warehouse schema based on relational model",
        "semistructured": "Global schema using semistructured model",
        "none": "No global schema",
    }[traits.global_schema_model]


def _interface_cell(traits):
    if traits.requires_query_language_knowledge:
        return "Require knowledge of SQL/OQL"
    return "Biological terms; no knowledge of SQL required"


def _operations_cell(traits):
    return f"New operations on {traits.operations_on} data"


def _reconciliation_cell(traits):
    if traits.reconciles_results:
        if traits.operations_on == "warehouse":
            return "Data in warehouse is reconciled and cleansed"
        return "Reconciliation of results"
    return "No reconciliation of results"


def _combination_cell(traits):
    if traits.operations_on == "warehouse":
        return "Query results are integrated"
    return "Results integrated using global schema; source wrapper needed"


CRITERIA = (
    Criterion(
        "The heterogeneity of available data repositories",
        lambda traits: (
            "User shielded from source details"
            if traits.shields_source_details
            else "User exposed to source details"
        ),
    ),
    Criterion("Missing standards for data representation", _schema_cell),
    Criterion(
        "Multitude of user interfaces",
        lambda traits: (
            "Single-access point"
            if traits.single_access_point
            else "Per-source interfaces"
        ),
    ),
    Criterion("Quality of user interfaces", _interface_cell),
    Criterion(
        "Quality of query languages",
        lambda traits: (
            "Comprehensive query capability"
            if traits.comprehensive_query_capability
            else "Limited query capability"
        ),
    ),
    Criterion(
        "Limited functionality of repositories", _operations_cell
    ),
    Criterion(
        "Format of query results",
        lambda traits: (
            "Re-organization of result possible"
            if traits.reorganizes_results
            else "Fixed result format"
        ),
    ),
    Criterion(
        "Incorrectness due to inconsistent and incompatible data",
        _reconciliation_cell,
    ),
    Criterion(
        "Uncertainty of data",
        lambda traits: (
            "Provision for uncertainty"
            if traits.handles_uncertainty
            else "No provision for dealing with uncertainty in data"
        ),
    ),
    Criterion(
        "Combination of data from different repositories",
        _combination_cell,
    ),
    Criterion(
        "Extraction of hidden and creation of new knowledge",
        lambda traits: (
            "Annotations supported"
            if traits.supports_annotations
            else "Not supported"
        ),
    ),
    Criterion(
        "Low-level treatment of data",
        lambda traits: (
            "Supported (self-describing model)"
            if traits.self_describing_model
            else "Not supported"
        ),
    ),
    Criterion(
        "Integration of self-generated data and extensibility",
        lambda traits: (
            "Supported"
            if traits.integrates_self_generated_data
            else "Not supported"
        ),
    ),
    Criterion(
        "Integration of new specialty evaluation functions",
        lambda traits: (
            "Supported"
            if traits.new_evaluation_functions
            else "Not supported"
        ),
    ),
    Criterion(
        "Loss of existing repositories",
        lambda traits: (
            "Archiving of data supported"
            if traits.archival_functionality
            else "No archival functionality"
        ),
    ),
)


class Table1:
    """The regenerated matrix plus the probe evidence behind it."""

    def __init__(self, systems, probe_results):
        self.systems = systems
        self.probe_results = probe_results

    def headers(self):
        return ["Criterion"] + [system.name for system in self.systems]

    def rows(self):
        rendered = []
        for criterion in CRITERIA:
            rendered.append(
                [criterion.label]
                + [
                    criterion.render_cell(system.traits())
                    for system in self.systems
                ]
            )
        return rendered

    def render(self):
        lines = [
            "Table 1: comparison of ANNODA with other integration systems",
            "(regenerated from implemented systems; behavioural traits "
            "verified by probes)",
            "",
            table(self.headers(), self.rows()),
            "",
            "probe evidence:",
        ]
        for name, outcome in sorted(self.probe_results.items()):
            lines.append(f"  {name}: {outcome}")
        return "\n".join(lines)


def build_table1(corpus, conflicted_corpus):
    """Instantiate all four systems over live corpora, run the
    behavioural probes, and return the regenerated :class:`Table1`.

    Raises
    ------
    IntegrationError
        If any probe contradicts the trait the table would print — the
        regenerated table must be backed by behaviour.
    """
    k2 = K2KleisliSystem(default_wrappers(conflicted_corpus))
    discoverylink = DiscoveryLinkSystem(default_wrappers(conflicted_corpus))
    warehouse = WarehouseSystem(default_wrappers(conflicted_corpus))
    warehouse.etl()
    annoda = Annoda()
    annoda.corpus = conflicted_corpus
    for wrapper in default_wrappers(conflicted_corpus):
        annoda.add_source(wrapper)
    annoda_system = AnnodaSystem(annoda)

    systems = [k2, discoverylink, warehouse, annoda_system]
    probes = {}
    probes.update(_probe_reconciliation(systems, conflicted_corpus))
    probes.update(_probe_freshness(warehouse, conflicted_corpus))
    probes.update(_probe_extensibility(annoda, conflicted_corpus))
    probes.update(_probe_new_functions(annoda))
    return Table1(systems, probes)


def _probe_reconciliation(systems, conflicted_corpus):
    """Reconciling systems must recover strictly more true disease
    associations than non-reconciling ones on a conflicted corpus."""
    truth = conflicted_corpus.ground_truth.loci_with_omim()
    recalls = {}
    for system in systems:
        answer, _effort = system.disease_association_query()
        recalls[system.name] = answer_quality(answer, truth)["recall"]
    probes = {}
    for system in systems:
        recall = recalls[system.name]
        reconciles = system.traits().reconciles_results
        baseline = min(
            value
            for name, value in recalls.items()
            if not _system_reconciles(systems, name)
        )
        if reconciles and recall < baseline:
            raise IntegrationError(
                f"{system.name} claims reconciliation but recall "
                f"{recall:.2f} does not beat the naive baseline "
                f"{baseline:.2f}"
            )
        probes[f"reconciliation recall ({system.name})"] = f"{recall:.3f}"
    return probes


def _system_reconciles(systems, name):
    for system in systems:
        if system.name == name:
            return system.traits().reconciles_results
    return False


def _probe_freshness(warehouse, conflicted_corpus):
    """The warehouse must go stale on a source update; re-ETL fixes it."""
    from repro.sources.locuslink import LocusRecord

    assert not warehouse.is_stale()
    probe_record = LocusRecord(
        locus_id=888888, organism="Homo sapiens", symbol="PROBE1"
    )
    conflicted_corpus.locuslink.add(probe_record)
    try:
        stale_after_update = warehouse.is_stale()
    finally:
        conflicted_corpus.locuslink.remove(888888)
    warehouse.etl()
    if not stale_after_update:
        raise IntegrationError(
            "warehouse failed to detect a member-source update"
        )
    return {
        "warehouse staleness after source update": str(stale_after_update),
        "warehouse ETL seconds": f"{warehouse.etl_seconds:.4f}",
    }


def _probe_extensibility(annoda, conflicted_corpus):
    """ANNODA must accept a new source at run time and route to it."""
    citations = conflicted_corpus.make_citation_store(count=20)
    annoda.add_source(PubmedLikeWrapper(citations))
    try:
        result = annoda.ask("genes cited in some PubMed article",
                            enrich_links=False)
        routed = len(result) > 0
    finally:
        annoda.remove_source("PubMed")
    if not routed:
        raise IntegrationError(
            "plugged-in source did not answer any queries"
        )
    return {"new source plugged in and queried": str(routed)}


def _probe_new_functions(annoda):
    """ANNODA must accept a new specialty evaluation function."""
    registry = annoda.mediator.mapping_module.transforms
    registry.register("probe_reverse", lambda value: str(value)[::-1])
    applied = registry.apply("probe_reverse", "FOSB")
    if applied != "BSOF":
        raise IntegrationError("specialty function registration failed")
    return {"new specialty evaluation function registered": "True"}
