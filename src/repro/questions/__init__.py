"""The biological-question interface (section 4.2).

*"Users can describe a query in biological question, not in SQL."*
A :class:`BiologicalQuestion` captures the three steps of the paper's
query interface — source inclusion/exclusion, combination method,
search conditions — and compiles to a
:class:`~repro.mediator.decompose.GlobalQuery`.  Questions are built
three ways: the fluent :class:`QuestionBuilder`, the canned
:mod:`~repro.questions.catalog`, or parsed from constrained English by
:class:`QuestionParser` (the paper's Figure-5(b) question parses out of
the box).
"""

from repro.questions.builder import QuestionBuilder
from repro.questions.catalog import QuestionCatalog
from repro.questions.model import BiologicalQuestion
from repro.questions.parser import QuestionParser

__all__ = [
    "BiologicalQuestion",
    "QuestionBuilder",
    "QuestionCatalog",
    "QuestionParser",
]
