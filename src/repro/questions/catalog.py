"""Canned biological questions, including the paper's flagship query."""

from repro.questions.builder import QuestionBuilder


class QuestionCatalog:
    """Ready-made questions covering the paper's demonstrated uses."""

    @staticmethod
    def figure5b():
        """The paper's Figure-5(b) query: *"Find a set of LocusLink
        genes, which are annotated with some GO functions, but not
        associated with some OMIM disease"*."""
        return (
            QuestionBuilder(
                "Find a set of LocusLink genes, which are annotated with "
                "some GO functions, but not associated with some OMIM "
                "disease"
            )
            .include("GO")
            .exclude("OMIM")
            .build()
        )

    @staticmethod
    def disease_genes(organism=None):
        """Genes associated with at least one OMIM disease entry."""
        builder = QuestionBuilder(
            "Find genes associated with some OMIM disease"
        ).include("OMIM")
        if organism is not None:
            builder.where("Species", "=", organism)
        return builder.build()

    @staticmethod
    def unannotated_genes():
        """Genes with neither GO annotation nor OMIM association —
        annotation backlog candidates."""
        return (
            QuestionBuilder(
                "Find genes not annotated with any GO function and not "
                "associated with any OMIM disease"
            )
            .exclude("GO")
            .exclude("OMIM")
            .build()
        )

    @staticmethod
    def genes_by_annotation_keyword(keyword, aspect=None):
        """Genes annotated with a GO term whose name contains a keyword."""
        builder = QuestionBuilder(
            f"Find genes annotated with GO functions containing "
            f"'{keyword}'"
        ).include("GO").where_linked("Title", "contains", keyword)
        if aspect is not None:
            builder.where_linked("Aspect", "=", aspect)
        return builder.build()

    @staticmethod
    def genes_under_term(go_id):
        """Genes annotated with a GO term *or any of its descendants* —
        the ontology-aware closure query GO analyses rely on."""
        return (
            QuestionBuilder(
                f"Find genes annotated with {go_id} or any term below it"
            )
            .include("GO")
            .where_linked("AnnotationID", "under", go_id)
            .build()
        )

    @staticmethod
    def cited_disease_genes():
        """Disease genes with literature support (needs the PubMed-like
        source plugged in)."""
        return (
            QuestionBuilder(
                "Find genes associated with some OMIM disease and cited "
                "in some PubMed article"
            )
            .include("OMIM")
            .include("PubMed")
            .build()
        )

    @classmethod
    def all_names(cls):
        return [
            "figure5b",
            "disease_genes",
            "unannotated_genes",
            "genes_by_annotation_keyword",
            "cited_disease_genes",
        ]
