"""The biological-question model."""

from dataclasses import dataclass, field

from repro.mediator.decompose import GlobalQuery
from repro.util.errors import QueryError


@dataclass(frozen=True)
class BiologicalQuestion:
    """One question as the query interface captures it.

    Attributes mirror the three interface steps of section 4.2:
    ``links`` carries the per-source inclusion/exclusion (step 1),
    ``combination`` the combining method (step 2; link constraints are
    conjunctive — the paper's interface combines selected mappings with
    one method), and the conditions the search narrowing (step 3).
    """

    text: str
    anchor_source: str = "LocusLink"
    anchor_conditions: tuple = ()
    links: tuple = ()
    combination: str = "and"
    select: tuple = ()

    def __post_init__(self):
        if self.combination != "and":
            raise QueryError(
                "the ANNODA interface combines constraints "
                f"conjunctively; got {self.combination!r}"
            )

    # -- views the renderer uses -------------------------------------------------

    def include_links(self):
        return [link for link in self.links if link.mode == "include"]

    def exclude_links(self):
        return [link for link in self.links if link.mode == "exclude"]

    def condition_descriptions(self):
        """Human-readable conditions for the Figure-5(a) form."""
        lines = [
            f"{self.anchor_source}: {condition.render()}"
            for condition in self.anchor_conditions
        ]
        for link in self.links:
            for condition in link.conditions:
                lines.append(f"{link.source_name}: {condition.render()}")
        return lines

    # -- compilation ---------------------------------------------------------------

    def to_global_query(self):
        """The mediator query this question denotes."""
        return GlobalQuery(
            anchor_source=self.anchor_source,
            conditions=self.anchor_conditions,
            links=self.links,
            select=self.select,
        )

    def to_lorel(self):
        """An explanatory Lorel rendering of the question.

        Shown to curious users (the paper expresses complex queries in
        Lorel, section 4.1); decomposition does not round-trip through
        this text.
        """
        clauses = []
        for condition in self.anchor_conditions:
            clauses.append(
                f"G.{condition.attribute} {condition.op} "
                f"{_lorel_literal(condition.value)}"
            )
        for link in self.links:
            inner = f"exists G.{link.via}"
            if link.conditions:
                inner = " and ".join(
                    [inner]
                    + [
                        f"{link.source_name}.{condition.attribute} "
                        f"{condition.op} {_lorel_literal(condition.value)}"
                        for condition in link.conditions
                    ]
                )
            if link.mode == "exclude":
                inner = f"not ({inner})"
            clauses.append(inner)
        where = " and ".join(clauses) if clauses else "true"
        return (
            f"select G from ANNODA-GML.{self.anchor_source}.Locus G "
            f"where {where}"
        )


def _lorel_literal(value):
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)
