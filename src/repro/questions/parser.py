"""Parsing constrained-English biological questions.

The paper's users *"describe a query in biological question, not in
SQL"*.  This parser covers the question family the paper's interface
supports: a gene anchor, organism qualifiers, per-source
inclusion/exclusion phrases, and quoted narrowing terms, e.g.::

    Find a set of LocusLink genes, which are annotated with some GO
    functions, but not associated with some OMIM disease

    human genes annotated with GO function containing "kinase"

Anything outside the grammar raises a helpful
:class:`~repro.util.errors.QueryError` rather than guessing.
"""

import re

from repro.questions.builder import QuestionBuilder
from repro.util.errors import QueryError

_ORGANISMS = {
    "human": "Homo sapiens",
    "mouse": "Mus musculus",
    "murine": "Mus musculus",
    "rat": "Rattus norvegicus",
}

#: (source name, phrases that reference a link into it)
_SOURCE_PHRASES = (
    ("GO", r"(?:go|gene ontology)\s+(?:function|term|annotation)s?"),
    ("OMIM", r"(?:omim\s+)?(?:omim|disease|disorder|phenotype)s?(?:\s+entry|\s+entries)?"),
    ("PubMed", r"(?:pubmed\s+)?(?:article|citation|publication)s?"),
)

_LINK_VERBS = (
    r"annotated with",
    r"associated with",
    r"linked to",
    r"cited in",
)


class QuestionParser:
    """Parse one constrained-English question into a
    :class:`~repro.questions.model.BiologicalQuestion`."""

    def parse(self, text):
        normalized = " ".join(text.strip().split())
        if not normalized:
            raise QueryError("empty question")
        lowered = normalized.lower()
        if "gene" not in lowered and "loci" not in lowered and (
            "locus" not in lowered
        ):
            raise QueryError(
                "questions must range over genes, e.g. 'find genes "
                "annotated with some GO function'"
            )
        builder = QuestionBuilder(normalized)
        self._parse_organism(lowered, builder)
        self._parse_symbol(normalized, builder)
        matched_any = self._parse_links(lowered, normalized, builder)
        if not matched_any and not builder._anchor_conditions:
            raise QueryError(
                "could not find any constraint in the question; supported "
                "phrases: 'annotated with some GO function', "
                "'associated with some OMIM disease', "
                "'cited in some PubMed article', 'human/mouse/rat genes', "
                "'with symbol X'"
            )
        return builder.build()

    # -- qualifiers ---------------------------------------------------------------

    @staticmethod
    def _parse_organism(lowered, builder):
        for word, organism in _ORGANISMS.items():
            if re.search(rf"\b{word}\b", lowered):
                builder.where("Species", "=", organism)
                return

    @staticmethod
    def _parse_symbol(text, builder):
        match = re.search(
            r"with (?:the )?symbol ['\"]?([A-Za-z0-9-]+)['\"]?", text,
            flags=re.IGNORECASE,
        )
        if match:
            builder.where("GeneSymbol", "=", match.group(1))

    # -- link phrases ------------------------------------------------------------------

    def _parse_links(self, lowered, original, builder):
        matched_any = self._parse_specific_term(lowered, builder)
        for source_name, noun_pattern in _SOURCE_PHRASES:
            if matched_any and source_name == "GO" and re.search(
                r"term\s+go:\d{7}", lowered
            ):
                # Already captured as a specific-term constraint.
                continue
            for verb in _LINK_VERBS:
                pattern = (
                    rf"(?P<negation>not\s+|without\s+being\s+)?{verb}\s+"
                    rf"(?:some\s+|any\s+|a\s+|an\s+)?(?:given\s+)?"
                    rf"(?P<noun>{noun_pattern})"
                )
                match = re.search(pattern, lowered)
                if not match:
                    continue
                matched_any = True
                if match.group("negation"):
                    builder.exclude(source_name)
                else:
                    builder.include(source_name)
                self._parse_containing(
                    lowered, original, match.end(), builder
                )
                break
        return matched_any

    @staticmethod
    def _parse_specific_term(lowered, builder):
        """'annotated with [the] [GO] term GO:0000123 [or below]' pins
        the annotation to one accession (or its descendant closure)."""
        match = re.search(
            r"(?P<negation>not\s+)?annotated\s+with\s+(?:the\s+)?"
            r"(?:go\s+)?term\s+(?P<accession>go:\d{7})"
            r"(?P<below>\s+or\s+(?:below|any\s+descendant))?",
            lowered,
        )
        if not match:
            return False
        accession = "GO:" + match.group("accession")[3:]
        if match.group("negation"):
            builder.exclude("GO")
        else:
            builder.include("GO")
        operator = "under" if match.group("below") else "="
        builder.where_linked("AnnotationID", operator, accession)
        return True

    @staticmethod
    def _parse_containing(lowered, original, position, builder):
        """A 'containing \"word\"' right after a link phrase narrows the
        linked source's Title."""
        tail = lowered[position:position + 40]
        match = re.match(
            r"s?\s+containing\s+['\"]([^'\"]+)['\"]", tail
        )
        if match:
            builder.where_linked("Title", "contains", match.group(1))
