"""Fluent construction of biological questions."""

from repro.mediator.decompose import Condition, LinkConstraint
from repro.questions.model import BiologicalQuestion
from repro.util.errors import QueryError

#: Default link attribute for each known source.
DEFAULT_VIA = {
    "GO": "AnnotationID",
    "OMIM": "DiseaseID",
    "PubMed": "CitationID",
    "SwissProt": "ProteinID",
}

#: Sources whose native linkage goes through gene symbols.
SYMBOL_JOINED = frozenset({"OMIM", "SwissProt"})

#: Sources whose link ids live on their own side (GeneID back-refs).
REVERSE_JOINED = frozenset({"SwissProt"})


class QuestionBuilder:
    """Step-by-step question assembly mirroring the Figure-5(a) form.

    >>> question = (
    ...     QuestionBuilder("genes with GO but no OMIM")
    ...     .include("GO")
    ...     .exclude("OMIM")
    ...     .build()
    ... )
    >>> [link.mode for link in question.links]
    ['include', 'exclude']
    """

    def __init__(self, text):
        self._text = text
        self._anchor = "LocusLink"
        self._anchor_conditions = []
        self._links = []
        self._pending_link = None
        self._select = []

    # -- step 0: the anchor -----------------------------------------------------

    def anchor(self, source_name):
        """Choose the gene source the question ranges over."""
        self._anchor = source_name
        return self

    # -- step 1: inclusion / exclusion of targets ------------------------------

    def include(self, source_name, via=None, symbol_join=None,
                reverse_join=None):
        """Require a qualifying link into ``source_name``."""
        return self._add_link(
            "include", source_name, via, symbol_join, reverse_join
        )

    def exclude(self, source_name, via=None, symbol_join=None,
                reverse_join=None):
        """Forbid any qualifying link into ``source_name``."""
        return self._add_link(
            "exclude", source_name, via, symbol_join, reverse_join
        )

    def _add_link(self, mode, source_name, via, symbol_join, reverse_join):
        self._flush_pending()
        resolved_via = via or DEFAULT_VIA.get(source_name)
        if resolved_via is None:
            raise QueryError(
                f"no default link attribute for source {source_name!r}; "
                "pass via=..."
            )
        if symbol_join is None:
            symbol_join = source_name in SYMBOL_JOINED
        if reverse_join is None:
            reverse_join = source_name in REVERSE_JOINED
        self._pending_link = {
            "source_name": source_name,
            "mode": mode,
            "via": resolved_via,
            "symbol_join": symbol_join,
            "reverse_join": reverse_join,
            "conditions": [],
        }
        return self

    # -- step 3: search conditions ------------------------------------------------

    def where(self, attribute, op, value):
        """A condition on the anchor's global attributes."""
        self._anchor_conditions.append(Condition(attribute, op, value))
        return self

    def where_linked(self, attribute, op, value):
        """A condition on the most recently added link's source."""
        if self._pending_link is None:
            raise QueryError(
                "where_linked() must follow include()/exclude()"
            )
        self._pending_link["conditions"].append(
            Condition(attribute, op, value)
        )
        return self

    # -- projection -------------------------------------------------------------------

    def select(self, *attributes):
        """Restrict the answer to the named global attributes."""
        self._select.extend(attributes)
        return self

    # -- finish ------------------------------------------------------------------------

    def build(self):
        self._flush_pending()
        return BiologicalQuestion(
            text=self._text,
            anchor_source=self._anchor,
            anchor_conditions=tuple(self._anchor_conditions),
            links=tuple(self._links),
            select=tuple(self._select),
        )

    def _flush_pending(self):
        if self._pending_link is not None:
            pending = self._pending_link
            self._links.append(
                LinkConstraint(
                    source_name=pending["source_name"],
                    mode=pending["mode"],
                    via=pending["via"],
                    conditions=tuple(pending["conditions"]),
                    symbol_join=pending["symbol_join"],
                    reverse_join=pending["reverse_join"],
                )
            )
            self._pending_link = None
