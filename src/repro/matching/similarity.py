"""Similarity metrics between schema elements.

MDSM scores each (local element, global element) pair by combining:

- **name similarity** — normalized edit distance over the raw names
  plus Jaccard overlap of camelCase/underscore tokens, with a
  domain synonym table (``symbol`` ~ ``gene``, ``id`` ~ ``accession``
  ...);
- **type similarity** — identical OEM types score 1, compatible
  families (numeric, textual) score partially;
- **arity similarity** — single- vs multi-valued agreement;
- **sample similarity** — instance-level evidence: Jaccard overlap of
  live sample values (stringified).
"""

import re

#: Domain synonym groups; tokens in one group count as equal.
_SYNONYM_GROUPS = (
    {"id", "identifier", "accession", "number", "no", "key"},
    {"symbol", "gene", "genesymbol", "locus"},
    {"name", "title", "label"},
    {"description", "definition", "summary", "text", "def"},
    {"organism", "species", "taxon"},
    {"position", "map", "location"},
    {"link", "url", "links"},
    {"disease", "phenotype", "disorder", "omim", "mim"},
    {"citation", "reference", "pubmed", "pmid"},
    {"annotation", "go", "function", "term"},
    {"namespace", "aspect", "branch"},
    {"alias", "synonym"},
    {"parent", "is", "isa"},
)

_SYNONYM_OF = {}
for _group in _SYNONYM_GROUPS:
    _canonical = min(_group)
    for _token in _group:
        _SYNONYM_OF[_token] = _canonical


def levenshtein(a, b):
    """Edit distance between two strings (two-row dynamic program)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,       # deletion
                    current[j - 1] + 1,    # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def tokenize_name(name):
    """Split a schema name into canonical lower-case tokens.

    Handles camelCase, underscores, hyphens and digit boundaries;
    applies the synonym table so ``GeneSymbol`` and ``Symbol`` share a
    token.
    """
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", name)
    spaced = re.sub(r"[_\-./]", " ", spaced)
    # Single-character fragments ("A" from camel-splitting "IsA") are
    # noise, not evidence.
    tokens = [
        token.lower() for token in spaced.split() if len(token) > 1
    ]
    return [_SYNONYM_OF.get(token, token) for token in tokens]


def name_similarity(a, b):
    """Similarity of two schema names in [0, 1]."""
    if not a or not b:
        return 0.0
    lowered_a, lowered_b = a.lower(), b.lower()
    if lowered_a == lowered_b:
        return 1.0
    edit = levenshtein(lowered_a, lowered_b)
    edit_score = 1.0 - edit / max(len(lowered_a), len(lowered_b))
    tokens_a = set(tokenize_name(a))
    tokens_b = set(tokenize_name(b))
    if tokens_a and tokens_b:
        token_score = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        # One name's tokens contained in the other's (Pmid within
        # CitationID) is strong evidence even when extra qualifier
        # tokens dilute the Jaccard ratio — but weaker than an exact
        # token match, so GeneSymbol still prefers GeneSymbol over
        # AliasSymbol.
        if token_score < 0.7 and (
            tokens_a <= tokens_b or tokens_b <= tokens_a
        ):
            token_score = 0.7
    else:
        token_score = 0.0
    return max(edit_score, token_score, 0.0)


#: Families of compatible OEM types for partial type credit.
_NUMERIC = frozenset({"Integer", "Real"})
_TEXTUAL = frozenset({"String", "Url"})


def type_similarity(type_a, type_b):
    """Similarity of two OEM types in [0, 1]."""
    if type_a is type_b:
        return 1.0
    names = {type_a.value, type_b.value}
    if names <= _NUMERIC:
        return 0.7
    if names <= _TEXTUAL:
        return 0.7
    if "String" in names:
        # Anything serializes to text; weak compatibility.
        return 0.3
    return 0.0


def arity_similarity(multi_a, multi_b):
    """1 when both elements agree on single- vs multi-valued."""
    return 1.0 if bool(multi_a) == bool(multi_b) else 0.0


def sample_similarity(samples_a, samples_b):
    """Jaccard overlap of stringified instance samples in [0, 1].

    Missing samples on *either* side give a neutral 0.5: absence of
    instance evidence (the global schema comes from domain knowledge,
    not data) should neither help nor kill a correspondence.  Zero is
    reserved for actual disagreement — both sides sampled, nothing
    shared.
    """
    set_a = {str(sample) for sample in samples_a}
    set_b = {str(sample) for sample in samples_b}
    if not set_a or not set_b:
        return 0.5
    return len(set_a & set_b) / len(set_a | set_b)


def combined_similarity(element_a, element_b, weights):
    """Weighted combination of all metrics for two
    :class:`~repro.wrappers.schema.SchemaElement` objects."""
    return (
        weights.name * name_similarity(element_a.name, element_b.name)
        + weights.type * type_similarity(element_a.oem_type,
                                         element_b.oem_type)
        + weights.arity * arity_similarity(element_a.multivalued,
                                           element_b.multivalued)
        + weights.samples * sample_similarity(element_a.samples,
                                              element_b.samples)
    )
