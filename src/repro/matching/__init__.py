"""MDSM: schema matching via the Hungarian method (the Mapping module).

Section 3.1 of the paper: *"To address semantic conflicts and
contradictions, we modified our proposed matching method called MDSM:
Microarray Database Schema Matching by using Hungarian Method to map
the object correspondences."*

The pipeline: each pair of schema elements (local model attribute vs
global model attribute) is scored by a weighted combination of name,
type, arity and instance similarity; the resulting similarity matrix
is solved as an optimal assignment problem with a from-scratch
Hungarian method; assignments under a score threshold are discarded.
Greedy and random assignment strategies are provided as ablation
baselines.
"""

from repro.matching.correspondence import Correspondence, CorrespondenceSet
from repro.matching.hungarian import solve_assignment, solve_max_assignment
from repro.matching.mdsm import MdsmMatcher, SimilarityWeights
from repro.matching.similarity import (
    combined_similarity,
    levenshtein,
    name_similarity,
    sample_similarity,
    type_similarity,
)

__all__ = [
    "Correspondence",
    "CorrespondenceSet",
    "MdsmMatcher",
    "SimilarityWeights",
    "combined_similarity",
    "levenshtein",
    "name_similarity",
    "sample_similarity",
    "solve_assignment",
    "solve_max_assignment",
    "type_similarity",
]
