"""The Hungarian method (Kuhn-Munkres) for the assignment problem.

A from-scratch O(n^3) implementation using dual potentials and
augmenting paths.  Handles rectangular matrices by padding with
zero-cost dummy rows/columns whose assignments are dropped from the
result.  Property tests cross-check optimality against
``scipy.optimize.linear_sum_assignment``.
"""

from repro.util.errors import ConfigurationError

_INF = float("inf")


def solve_assignment(cost_rows):
    """Minimum-cost assignment.

    Parameters
    ----------
    cost_rows:
        Rectangular matrix as a list of equal-length rows of finite
        numbers; ``cost_rows[i][j]`` is the cost of assigning row ``i``
        to column ``j``.

    Returns
    -------
    (assignment, total_cost):
        ``assignment`` is a list of (row, column) pairs covering
        ``min(n_rows, n_cols)`` rows, each row and column used at most
        once, minimizing the summed cost; ``total_cost`` is that sum.
    """
    n_rows, n_cols, matrix = _validated(cost_rows)
    size = max(n_rows, n_cols)
    # Pad to square with zero-cost dummies.
    padded = [row + [0.0] * (size - n_cols) for row in matrix]
    padded.extend([[0.0] * size for _ in range(size - n_rows)])

    row_of_col = _kuhn_munkres(padded, size)

    assignment = []
    total = 0.0
    for column in range(size):
        row = row_of_col[column]
        if row < n_rows and column < n_cols:
            assignment.append((row, column))
            total += matrix[row][column]
    assignment.sort()
    return assignment, total


def solve_max_assignment(score_rows):
    """Maximum-score assignment (used with similarity matrices).

    Scores are converted to costs by subtracting from the matrix
    maximum, then :func:`solve_assignment` runs.  Returns
    ``(assignment, total_score)``.
    """
    n_rows, n_cols, matrix = _validated(score_rows)
    peak = max((value for row in matrix for value in row), default=0.0)
    cost = [[peak - value for value in row] for row in matrix]
    assignment, _ = solve_assignment(cost)
    total = sum(matrix[row][column] for row, column in assignment)
    return assignment, total


def _validated(rows):
    if not rows or not rows[0]:
        return 0, 0, []
    n_cols = len(rows[0])
    matrix = []
    for index, row in enumerate(rows):
        if len(row) != n_cols:
            raise ConfigurationError(
                f"cost matrix is ragged: row {index} has {len(row)} "
                f"columns, expected {n_cols}"
            )
        converted = []
        for value in row:
            number = float(value)
            if number != number or number in (_INF, -_INF):
                raise ConfigurationError(
                    "cost matrix entries must be finite numbers"
                )
            converted.append(number)
        matrix.append(converted)
    return len(matrix), n_cols, matrix


def _kuhn_munkres(a, n):
    """Square minimum-cost assignment via potentials + augmenting paths.

    ``a`` is an n x n matrix.  Returns ``row_of_col``: for each column,
    the row assigned to it.
    """
    # 1-indexed internals; index 0 is the virtual unmatched slot.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)  # p[j] = row matched to column j (0 = none)
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = a[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the alternating path.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    return [p[j] - 1 for j in range(1, n + 1)]
