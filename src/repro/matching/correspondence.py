"""Object correspondences produced by schema matching."""

from dataclasses import dataclass

from repro.util.errors import IntegrationError


@dataclass(frozen=True)
class Correspondence:
    """One matched pair: a local element maps onto a global element."""

    local_name: str
    global_name: str
    score: float

    def render(self):
        return f"{self.local_name} -> {self.global_name} ({self.score:.2f})"


class CorrespondenceSet:
    """All correspondences between one local model and the global model.

    Provides the two lookups the mediator needs: local -> global label
    renaming (applied when importing wrapper answers) and global ->
    local translation (applied when decomposing global queries).
    """

    def __init__(self, source_name, correspondences):
        self.source_name = source_name
        self._by_local = {}
        self._by_global = {}
        for correspondence in correspondences:
            if correspondence.local_name in self._by_local:
                raise IntegrationError(
                    f"{source_name}: local element "
                    f"{correspondence.local_name!r} matched twice"
                )
            if correspondence.global_name in self._by_global:
                raise IntegrationError(
                    f"{source_name}: global element "
                    f"{correspondence.global_name!r} matched twice"
                )
            self._by_local[correspondence.local_name] = correspondence
            self._by_global[correspondence.global_name] = correspondence

    def __len__(self):
        return len(self._by_local)

    def __iter__(self):
        return iter(
            sorted(self._by_local.values(), key=lambda c: c.local_name)
        )

    def to_global(self, local_name):
        """The global name a local element maps to, or ``None``."""
        correspondence = self._by_local.get(local_name)
        return correspondence.global_name if correspondence else None

    def to_local(self, global_name):
        """The local name behind a global element, or ``None``."""
        correspondence = self._by_global.get(global_name)
        return correspondence.local_name if correspondence else None

    def label_map(self):
        """Local -> global renaming dict (only names that change), in
        the form :meth:`repro.oem.OEMGraph.import_subgraph` accepts."""
        return {
            local: correspondence.global_name
            for local, correspondence in self._by_local.items()
            if local != correspondence.global_name
        }

    def covered_global_names(self):
        return set(self._by_global)

    def render(self):
        lines = [f"correspondences for {self.source_name}:"]
        lines.extend(f"  {correspondence.render()}" for correspondence in self)
        return "\n".join(lines)
