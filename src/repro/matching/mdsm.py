"""The MDSM matcher: similarity matrix + assignment strategy + threshold.

The Hungarian strategy reproduces the paper's method; greedy and random
strategies exist purely as ablation baselines for
``benchmarks/bench_matching.py``.
"""

from dataclasses import dataclass

from repro.matching.correspondence import Correspondence, CorrespondenceSet
from repro.matching.hungarian import solve_max_assignment
from repro.matching.similarity import combined_similarity
from repro.util.errors import ConfigurationError
from repro.util.rng import DeterministicRng

STRATEGIES = ("hungarian", "greedy", "random")


@dataclass(frozen=True)
class SimilarityWeights:
    """Relative weights of the four similarity metrics (sum to 1)."""

    name: float = 0.45
    type: float = 0.2
    arity: float = 0.1
    samples: float = 0.25

    def __post_init__(self):
        total = self.name + self.type + self.arity + self.samples
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"similarity weights must sum to 1, got {total}"
            )
        if min(self.name, self.type, self.arity, self.samples) < 0:
            raise ConfigurationError("similarity weights must be >= 0")


class MdsmMatcher:
    """Match local schema elements onto global schema elements."""

    def __init__(self, weights=None, threshold=0.45, strategy="hungarian",
                 seed=0):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown matching strategy {strategy!r}; "
                f"choose from {STRATEGIES}"
            )
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        self.weights = weights or SimilarityWeights()
        self.threshold = threshold
        self.strategy = strategy
        self._rng = DeterministicRng(seed)

    # -- public API --------------------------------------------------------------

    def similarity_matrix(self, local_elements, global_elements):
        """Pairwise similarity scores, local rows x global columns."""
        return [
            [
                combined_similarity(local, global_element, self.weights)
                for global_element in global_elements
            ]
            for local in local_elements
        ]

    def match(self, source_name, local_elements, global_elements):
        """Compute the correspondence set for one local model."""
        if not local_elements or not global_elements:
            return CorrespondenceSet(source_name, [])
        matrix = self.similarity_matrix(local_elements, global_elements)
        if self.strategy == "hungarian":
            pairs = self._assign_hungarian(matrix)
        elif self.strategy == "greedy":
            pairs = self._assign_greedy(matrix)
        else:
            pairs = self._assign_random(matrix)
        correspondences = [
            Correspondence(
                local_name=local_elements[row].name,
                global_name=global_elements[column].name,
                score=matrix[row][column],
            )
            for row, column in pairs
            if matrix[row][column] >= self.threshold
        ]
        return CorrespondenceSet(source_name, correspondences)

    # -- strategies ---------------------------------------------------------------

    @staticmethod
    def _assign_hungarian(matrix):
        assignment, _ = solve_max_assignment(matrix)
        return assignment

    @staticmethod
    def _assign_greedy(matrix):
        """Repeatedly take the best remaining pair (locally optimal,
        globally suboptimal — the ablation shows by how much)."""
        candidates = [
            (matrix[row][column], row, column)
            for row in range(len(matrix))
            for column in range(len(matrix[0]))
        ]
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_rows = set()
        used_columns = set()
        pairs = []
        for _score, row, column in candidates:
            if row in used_rows or column in used_columns:
                continue
            used_rows.add(row)
            used_columns.add(column)
            pairs.append((row, column))
        pairs.sort()
        return pairs

    def _assign_random(self, matrix):
        """Uniform random one-to-one assignment (sanity floor)."""
        rows = list(range(len(matrix)))
        columns = list(range(len(matrix[0])))
        self._rng.shuffle(columns)
        return sorted(zip(rows, columns))

    # -- quality scoring -------------------------------------------------------------

    @staticmethod
    def score_against(correspondences, expected):
        """Precision/recall/F1 of a correspondence set against an
        expected ``{local_name: global_name}`` mapping."""
        predicted = {
            correspondence.local_name: correspondence.global_name
            for correspondence in correspondences
        }
        true_positive = sum(
            1
            for local, global_name in predicted.items()
            if expected.get(local) == global_name
        )
        precision = true_positive / len(predicted) if predicted else 0.0
        recall = true_positive / len(expected) if expected else 0.0
        if precision + recall == 0:
            f1 = 0.0
        else:
            f1 = 2 * precision * recall / (precision + recall)
        return {"precision": precision, "recall": recall, "f1": f1}
