"""Vectorized operators over :class:`~repro.sources.batch.RecordBatch`.

The executor's record-at-a-time loops resolve wrapper labels and index
into a fresh dict once per record per condition; these operators hoist
every per-record constant out of the loop — labels resolve once, each
condition walks one column, dedup walks one key column — so the
semijoin speedup curve keeps growing at 100k+ loci instead of
flattening on per-record overhead.

Each operator is a *position* transform: it consumes and produces row
positions into a batch (or ``(batch_index, row)`` pairs across several
batches), and the caller gathers survivors once at the end with
``batch.take``.  Semantics mirror the record path exactly — the
fetchpath equivalence properties compare the two paths end to end.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.sources.base import NativeCondition, _evaluate
from repro.sources.batch import RecordBatch

#: One residual predicate bound to its source field: the executor
#: resolves the wrapper's label -> field mapping once per step, not
#: once per record.
BoundCondition = Tuple[str, NativeCondition]


def filter_positions(
    batch: RecordBatch,
    bound: Sequence[BoundCondition],
    positions: Optional[Sequence[int]] = None,
) -> List[int]:
    """Positions whose row satisfies every bound condition.

    Vectorized per condition: each predicate walks one column of the
    surviving positions (identical outcome to evaluating
    ``record.get(field)`` per record, including the missing-field →
    no-match rule).
    """
    keep = list(range(len(batch)) if positions is None else positions)
    for field, condition in bound:
        values = batch.values(field)
        keep = [
            position
            for position in keep
            if _evaluate(values[position], condition)
        ]
    return keep


def bind_residual(wrapper: Any, residual: Sequence[Any]) -> List[BoundCondition]:
    """Resolve residual ``(label, op, value)`` triples against one
    wrapper's field mapping, once per step."""
    return [
        (wrapper.source_field(label), NativeCondition(label, op, value))
        for label, op, value in residual
    ]


def dedup_rows(
    batches: Sequence[RecordBatch], key_field: str
) -> List[Tuple[Any, int, int]]:
    """First occurrence of each key across batches, in encounter order.

    Returns ``(key, batch_index, row)`` triples — the columnar twin of
    the semijoin's ``seen``-set dedup over record dicts.
    """
    seen: set = set()
    unique: List[Tuple[Any, int, int]] = []
    for batch_index, batch in enumerate(batches):
        keys = batch.values(key_field)
        for row in range(len(batch)):
            key = keys[row]
            if key in seen:
                continue
            seen.add(key)
            unique.append((key, batch_index, row))
    return unique


def merge_rows(
    batches: Sequence[RecordBatch],
    rows: Sequence[Tuple[Any, int, int]],
) -> RecordBatch:
    """One batch holding the given ``(key, batch_index, row)`` rows in
    order.  A single source batch gathers positionally; the multi-batch
    case (the per-id fetch fallback) goes through record dicts, since
    distinct replies may disagree on field order."""
    if not rows:
        return RecordBatch.empty(
            batches[0].fields if batches else ()
        )
    batch_indexes = {batch_index for _key, batch_index, _row in rows}
    if len(batch_indexes) == 1:
        only = next(iter(batch_indexes))
        return batches[only].take(
            [row for _key, _batch_index, row in rows]
        )
    return RecordBatch.from_records(
        [
            batches[batch_index].record_at(row)
            for _key, batch_index, row in rows
        ]
    )
