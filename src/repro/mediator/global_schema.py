"""The ANNODA global schema vocabulary.

Section 3.2.3: the global model *"has been constructed either from the
local relevant models or from general knowledge of the domain"*.  This
module is the *general knowledge* half: a gene-centric vocabulary of
global schema elements that local model attributes are matched onto by
MDSM.  The builder half lives in :mod:`repro.mediator.gml`.
"""

from repro.oem.types import OEMType
from repro.wrappers.schema import SchemaElement

#: The global, source-independent attribute vocabulary.
GLOBAL_ELEMENTS = (
    SchemaElement(
        "GeneID", OEMType.INTEGER, False,
        "unique integer identifier of a gene locus"),
    SchemaElement(
        "GeneSymbol", OEMType.STRING, False,
        "official symbol of the gene"),
    SchemaElement(
        "Species", OEMType.STRING, False,
        "organism the gene belongs to"),
    SchemaElement(
        "Definition", OEMType.STRING, False,
        "descriptive text: gene description, term definition, entry body"),
    SchemaElement(
        "MapPosition", OEMType.STRING, False,
        "cytogenetic map position of the gene"),
    SchemaElement(
        "AliasSymbol", OEMType.STRING, True,
        "alternate symbols or synonyms"),
    SchemaElement(
        "AnnotationID", OEMType.STRING, True,
        "functional annotation (GO) accessions"),
    SchemaElement(
        "DiseaseID", OEMType.INTEGER, True,
        "associated disease entry (MIM) numbers"),
    SchemaElement(
        "CitationID", OEMType.INTEGER, True,
        "supporting literature (PubMed) identifiers"),
    SchemaElement(
        "Title", OEMType.STRING, False,
        "name or title of an entry, term or article"),
    SchemaElement(
        "Aspect", OEMType.STRING, False,
        "ontology branch of an annotation term"),
    SchemaElement(
        "ParentTerm", OEMType.STRING, True,
        "parent accessions of an annotation term"),
    SchemaElement(
        "Obsolete", OEMType.BOOLEAN, False,
        "whether an annotation term is obsolete"),
    SchemaElement(
        "Inheritance", OEMType.STRING, False,
        "mode of inheritance of a disease entry"),
    SchemaElement(
        "Journal", OEMType.STRING, False,
        "journal a citation appeared in"),
    SchemaElement(
        "Year", OEMType.INTEGER, False,
        "publication year of a citation"),
    SchemaElement(
        "ProteinID", OEMType.STRING, False,
        "accession of a protein entry"),
    SchemaElement(
        "Keyword", OEMType.STRING, True,
        "controlled-vocabulary keywords of an entry"),
    SchemaElement(
        "SequenceLength", OEMType.INTEGER, False,
        "amino-acid length of a protein"),
)


class GlobalSchema:
    """Lookup access to the global element vocabulary."""

    def __init__(self, elements=GLOBAL_ELEMENTS):
        self._elements = tuple(elements)
        self._by_name = {element.name: element for element in self._elements}

    def elements(self):
        return list(self._elements)

    def names(self):
        return [element.name for element in self._elements]

    def get(self, name):
        """The element named ``name``, or ``None``."""
        return self._by_name.get(name)

    def __contains__(self, name):
        return name in self._by_name

    def __len__(self):
        return len(self._elements)

    def render(self):
        return "\n".join(element.render() for element in self._elements)
