"""The stage scheduler: place physical-plan fetches on a (shard,
replica) grid.

Every :class:`~repro.mediator.plan.FetchStage` the executor runs is a
*logical* fetch against one source.  When that source is sharded
(:class:`~repro.sources.shard.ShardedSource` behind the wrapper) the
scheduler expands the logical request into one shard-pinned request
per partition — all shipped through the existing
:class:`~repro.mediator.fetch.FederatedFetcher` pool, so the fan-out
inherits its concurrency, retry and deterministic job-order
semantics — and merges the shard partials back into one reply (record
tuples concatenate; columnar partials merge via
:meth:`~repro.sources.batch.RecordBatch.concat`).  Replica placement
happens below, inside
:class:`~repro.mediator.replicas.ReplicaSet`: the scheduler pins the
shard, the replica set maps ``shard_index % replica_count`` onto a
replica and fails over to siblings, and only when every replica
refused does the merged reply fail — at which point the
:class:`~repro.mediator.fetch.FederationPolicy` decides between
degrade and abort, exactly as for an unsharded source.

Failure composition order (innermost first):
``replica failover → per-request retries → shard merge → policy``.

Placement is also the ``explain`` story: :meth:`StageScheduler.plan_grid`
renders one :class:`StagePlacement` per stage, and the executor traces
the same grid as the ``schedule:place`` span.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Sequence

from repro.mediator.fetch import FetchReply, FetchRequest
from repro.sources.batch import RecordBatch


@dataclass(frozen=True)
class StagePlacement:
    """Where one plan stage's fetch lands on the federation grid."""

    purpose: str
    source: str
    shards: int
    replicas: int

    def describe(self) -> str:
        return (
            f"{self.purpose}@{self.source}: "
            f"{self.shards} shard(s) x {self.replicas} replica(s)"
        )


class StageScheduler:
    """Shard fan-out and shard-partial merge for plan stages.

    Stateless: the grid is read off the registered wrappers (their
    ``shard_count`` / ``replica_count`` duck-typed attributes) at
    placement time, so registration changes are always reflected.
    """

    @staticmethod
    def shard_count(wrapper: Any) -> int:
        count = getattr(wrapper, "shard_count", 1)
        try:
            return max(1, int(count))
        except (TypeError, ValueError):
            return 1

    @staticmethod
    def replica_count(wrapper: Any) -> int:
        count = getattr(wrapper, "replica_count", 1)
        try:
            return max(1, int(count))
        except (TypeError, ValueError):
            return 1

    # -- placement ------------------------------------------------------------

    def placement(self, purpose: str, wrapper: Any) -> StagePlacement:
        return StagePlacement(
            purpose=purpose,
            source=wrapper.name,
            shards=self.shard_count(wrapper),
            replicas=self.replica_count(wrapper),
        )

    def plan_grid(self, plan: Any, wrappers: Any) -> List[StagePlacement]:
        """One placement per plan stage (anchor first, then the link
        steps in plan order)."""
        grid = [
            self.placement(
                plan.anchor.purpose, wrappers[plan.anchor.source_name]
            )
        ]
        for step in plan.link_steps:
            grid.append(
                self.placement(step.purpose, wrappers[step.source_name])
            )
        return grid

    def describe_grid(self, plan: Any, wrappers: Any) -> str:
        """The placement as ``explain`` text."""
        lines = ["stage placement:"]
        for entry in self.plan_grid(plan, wrappers):
            lines.append(f"  {entry.describe()}")
        return "\n".join(lines)

    # -- fan-out --------------------------------------------------------------

    def expand(
        self, wrapper: Any, request: FetchRequest
    ) -> List[FetchRequest]:
        """The physical requests one logical request fans out into:
        one shard-pinned request per partition of a sharded source,
        the request itself otherwise (already-pinned requests pass
        through untouched)."""
        count = self.shard_count(wrapper)
        if count <= 1 or request.shard is not None:
            return [request]
        return [
            replace(request, shard=(index, count))
            for index in range(count)
        ]

    # -- merge ----------------------------------------------------------------

    def merge(
        self,
        source: str,
        request: FetchRequest,
        parts: Sequence[FetchReply],
    ) -> FetchReply:
        """Shard partials -> one logical reply.

        Records concatenate in shard order, which reproduces the
        unsharded record order exactly (shards are contiguous ranges
        of the canonical extent order).  Any failed shard fails the
        whole logical fetch — a partial shard set is *not* a partial
        answer the policy may keep, it is a hole in one source's
        extent, so the merged reply carries the first failing shard's
        status and no records (no half-extent results can ever poison
        caches or artifacts).  Attempt-level accounting stays on the
        per-shard replies (the executor folds each one into its
        stats); the merged reply only aggregates the totals.
        """
        if len(parts) == 1:
            return parts[0]
        failed = next((part for part in parts if not part.ok), None)
        records: Any = ()
        if failed is None:
            if any(
                isinstance(part.records, RecordBatch) for part in parts
            ):
                records = RecordBatch.concat(
                    [
                        part.records
                        if isinstance(part.records, RecordBatch)
                        else RecordBatch.from_records(list(part.records))
                        for part in parts
                    ]
                )
            else:
                merged: List[Any] = []
                for part in parts:
                    merged.extend(part.records)
                records = tuple(merged)
        return FetchReply(
            source=source,
            request=request,
            records=records,
            status="ok" if failed is None else failed.status,
            attempts=(),
            elapsed=sum(part.elapsed for part in parts),
            index_hits=sum(part.index_hits for part in parts),
            scan_queries=sum(part.scan_queries for part in parts),
            error=None if failed is None else failed.error,
        )
