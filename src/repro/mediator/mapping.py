"""The Mapping module: correspondences, mapping rules, transformations.

Figure 1 shows the Mapping module feeding the mediator with *mapping
rules*, *transformation calls* and *annotation database descriptions*.
:class:`MappingModule` runs MDSM once per registered wrapper, stores
the resulting correspondence sets, and translates records between
local and global vocabularies, applying registered value
transformations on the way.
"""

from repro.matching.mdsm import MdsmMatcher
from repro.mediator.global_schema import GlobalSchema
from repro.util.errors import ConfigurationError, IntegrationError


class TransformRegistry:
    """Named value transformations applied during translation.

    The defaults cover the conversions the three paper sources need;
    new specialty functions can be registered at run time (Table 1
    row: *"integration of new specialty evaluation functions:
    supported"*).
    """

    def __init__(self):
        self._functions = {}
        self.register("identity", lambda value: value)
        self.register("uppercase", lambda value: str(value).upper())
        self.register("lowercase", lambda value: str(value).lower())
        self.register("strip", lambda value: str(value).strip())
        self.register("to_string", str)
        self.register("to_integer", int)

    def register(self, name, function):
        if not callable(function):
            raise ConfigurationError(f"transform {name!r} is not callable")
        self._functions[name] = function

    def get(self, name):
        try:
            return self._functions[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown transform {name!r}; registered: "
                f"{sorted(self._functions)}"
            ) from None

    def names(self):
        return sorted(self._functions)

    def apply(self, name, value):
        return self.get(name)(value)


class MappingModule:
    """Per-source correspondences plus translation machinery."""

    def __init__(self, global_schema=None, matcher=None, transforms=None):
        self.global_schema = global_schema or GlobalSchema()
        self.matcher = matcher or MdsmMatcher()
        self.transforms = transforms or TransformRegistry()
        self._correspondences = {}
        self._transform_rules = {}
        self._descriptions = {}
        # (source, global label) -> local label memo; the executor
        # resolves the same handful of labels per record per condition,
        # so each resolution after the first is one dict hit.  Entries
        # are dropped when their source unregisters.
        self._local_label_memo = {}

    # -- registration -----------------------------------------------------------

    def register_wrapper(self, wrapper):
        """Run schema matching for ``wrapper`` and remember the results.

        This is step 1 of the paper's add-a-new-source procedure:
        *"mapping new annotation data source to the ANNODA global
        schema by using the mapping rules, transformation, and database
        descriptions"*.
        """
        if wrapper.name in self._correspondences:
            raise IntegrationError(
                f"source {wrapper.name!r} is already mapped"
            )
        correspondence_set = self.matcher.match(
            wrapper.name,
            wrapper.schema_elements(),
            self.global_schema.elements(),
        )
        self._correspondences[wrapper.name] = correspondence_set
        self._descriptions[wrapper.name] = wrapper.describe()
        return correspondence_set

    def unregister(self, source_name):
        self._correspondences.pop(source_name, None)
        self._descriptions.pop(source_name, None)
        self._transform_rules.pop(source_name, None)
        self._local_label_memo = {
            key: value
            for key, value in self._local_label_memo.items()
            if key[0] != source_name
        }

    def add_transform_rule(self, source_name, global_name, transform_name):
        """Attach a named transformation to one global attribute of one
        source (e.g. uppercase OMIM gene symbols during translation)."""
        self.transforms.get(transform_name)  # validate it exists
        self._transform_rules.setdefault(source_name, {})[global_name] = (
            transform_name
        )

    # -- lookups -----------------------------------------------------------------

    def sources(self):
        return sorted(self._correspondences)

    def correspondences(self, source_name):
        try:
            return self._correspondences[source_name]
        except KeyError:
            raise IntegrationError(
                f"source {source_name!r} has not been mapped"
            ) from None

    def description(self, source_name):
        return self._descriptions.get(source_name, "")

    def sources_providing(self, global_name):
        """Sources whose local model covers a global attribute."""
        return [
            source_name
            for source_name in self.sources()
            if self._correspondences[source_name].to_local(global_name)
            is not None
        ]

    # -- translation ----------------------------------------------------------------

    def to_local_label(self, source_name, global_name):
        memo_key = (source_name, global_name)
        local = self._local_label_memo.get(memo_key)
        if local is None:
            local = self.correspondences(source_name).to_local(global_name)
            if local is None:
                raise IntegrationError(
                    f"source {source_name!r} has no element for global "
                    f"attribute {global_name!r}"
                )
            self._local_label_memo[memo_key] = local
        return local

    def to_global_label(self, source_name, local_name):
        return self.correspondences(source_name).to_global(local_name)

    def translate_record(self, source_name, record, wrapper):
        """A source record dict re-keyed into global vocabulary.

        Unmatched local fields are kept under their local names
        prefixed with the source (provenance-preserving, per OEM's
        tolerance of irregular structure).
        """
        correspondence_set = self.correspondences(source_name)
        # Prefer the wrapper's memoized specs; plain field_specs() keeps
        # duck-typed test doubles working.
        specs_accessor = getattr(wrapper, "_specs", wrapper.field_specs)
        specs = specs_accessor()
        rules = self._transform_rules.get(source_name, {})
        translated = {}
        for label, (source_field, _type, _multi, _desc) in specs.items():
            if source_field not in record:
                continue
            value = record[source_field]
            global_name = correspondence_set.to_global(label)
            key = global_name or f"{source_name}.{label}"
            if global_name and global_name in rules:
                transform = self.transforms.get(rules[global_name])
                if isinstance(value, list):
                    value = [transform(item) for item in value]
                else:
                    value = transform(value)
            translated[key] = value
        return translated

    def render(self):
        lines = ["mapping module state:"]
        for source_name in self.sources():
            lines.append(self._correspondences[source_name].render())
        return "\n".join(lines)
