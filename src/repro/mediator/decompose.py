"""Global queries and their decomposition into per-source subqueries.

A :class:`GlobalQuery` is expressed purely in the global vocabulary:
an *anchor* concept (the gene source), attribute conditions on the
anchor, and *link constraints* over other sources — include ("genes
annotated with some GO function"), exclude ("but not associated with
some OMIM disease"), each optionally qualified by conditions on the
linked source.  The decomposer translates every global attribute into
the owning source's local labels via the mapping module, yielding one
:class:`SubQuery` per source touched.
"""

from dataclasses import dataclass, field

from repro.util.errors import IntegrationError, QueryError

#: Link modes: include keeps anchors having a qualifying link, exclude
#: keeps anchors having none.
LINK_MODES = ("include", "exclude")


@dataclass(frozen=True)
class Condition:
    """One predicate in global vocabulary: ``attribute op value``."""

    attribute: str
    op: str
    value: object

    def render(self):
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class LinkConstraint:
    """One cross-source constraint on the anchor.

    ``via`` names the global attribute carrying the link identifiers:
    for *forward* joins it lives on the anchor (``AnnotationID`` for
    GO, ``DiseaseID`` for OMIM, ``CitationID`` for PubMed); for
    *reverse* joins (``reverse_join=True``) it is the linked source's
    own key, and the linked source carries a ``GeneID`` back-reference
    instead (the SwissProt-like protein source links this way).
    ``symbol_join`` additionally joins through ``GeneSymbol``, which is
    where reconciliation earns its keep.
    """

    source_name: str
    mode: str
    via: str
    conditions: tuple = ()
    symbol_join: bool = False
    reverse_join: bool = False

    def __post_init__(self):
        if self.mode not in LINK_MODES:
            raise QueryError(
                f"link mode must be one of {LINK_MODES}, got {self.mode!r}"
            )

    def render(self):
        parts = [f"{self.mode} {self.source_name} via {self.via}"]
        if self.reverse_join:
            parts.append("(reverse join)")
        if self.symbol_join:
            parts.append("+ symbol join")
        if self.conditions:
            rendered = " and ".join(c.render() for c in self.conditions)
            parts.append(f"where {rendered}")
        return " ".join(parts)


@dataclass(frozen=True)
class GlobalQuery:
    """A query against the ANNODA global schema."""

    anchor_source: str
    conditions: tuple = ()
    links: tuple = ()
    select: tuple = ()

    def render(self):
        lines = [f"anchor: {self.anchor_source}"]
        for condition in self.conditions:
            lines.append(f"  where {condition.render()}")
        for link in self.links:
            lines.append(f"  {link.render()}")
        if self.select:
            lines.append(f"  select {', '.join(self.select)}")
        return "\n".join(lines)


@dataclass
class SubQuery:
    """One source's share of a global query (local vocabulary).

    ``local_conditions`` are (local label, op, value) triples; the
    optimizer later splits them into pushed-down vs residual.
    ``purpose`` is ``anchor`` or ``link``.  For link subqueries,
    ``via_anchor_label`` is the anchor's local label carrying the link
    ids (used by the semijoin strategy).
    """

    source_name: str
    purpose: str
    local_conditions: list = field(default_factory=list)
    link: LinkConstraint = None
    via_anchor_label: str = None

    def render(self):
        conditions = (
            " and ".join(
                f"{label} {op} {value!r}"
                for label, op, value in self.local_conditions
            )
            or "true"
        )
        return f"[{self.purpose}] {self.source_name}: {conditions}"


class QueryDecomposer:
    """Translate global queries into per-source subqueries."""

    def __init__(self, mapping_module):
        self.mapping_module = mapping_module

    def decompose(self, query):
        """One anchor subquery plus one subquery per link constraint.

        Raises
        ------
        IntegrationError
            When a referenced source is not mapped, or a condition's
            attribute has no counterpart at its source.
        """
        if query.anchor_source not in self.mapping_module.sources():
            raise IntegrationError(
                f"anchor source {query.anchor_source!r} is not registered"
            )
        if self.mapping_module.correspondences(
            query.anchor_source
        ).to_local("GeneID") is None:
            raise IntegrationError(
                f"source {query.anchor_source!r} cannot anchor a query: "
                "its schema has no element mapped to GeneID"
            )
        subqueries = [
            SubQuery(
                source_name=query.anchor_source,
                purpose="anchor",
                local_conditions=[
                    self._translate(query.anchor_source, condition)
                    for condition in query.conditions
                ],
            )
        ]
        for link in query.links:
            if link.source_name not in self.mapping_module.sources():
                raise IntegrationError(
                    f"linked source {link.source_name!r} is not registered"
                )
            if link.reverse_join:
                # The linked source must carry both its key attribute
                # and the GeneID back-reference.
                self.mapping_module.to_local_label(
                    link.source_name, link.via
                )
                self.mapping_module.to_local_label(
                    link.source_name, "GeneID"
                )
                via_anchor_label = None
            else:
                # The anchor must actually carry the linking attribute.
                via_anchor_label = self.mapping_module.to_local_label(
                    query.anchor_source, link.via
                )
            subqueries.append(
                SubQuery(
                    source_name=link.source_name,
                    purpose="link",
                    local_conditions=[
                        self._translate(link.source_name, condition)
                        for condition in link.conditions
                    ],
                    link=link,
                    via_anchor_label=via_anchor_label,
                )
            )
        return subqueries

    def logical_plan(self, subqueries, select=()):
        """The canonical logical tree over decomposed subqueries.

        Decomposition owns the tree *shape* (which sources are scanned,
        how links join, what is filtered where); the optimizer only
        rewrites it.  See :func:`repro.mediator.plan.build_logical`.
        """
        from repro.mediator.plan import build_logical

        return build_logical(subqueries, select=select)

    def decompose_logical(self, query):
        """Decompose a global query straight to its logical plan."""
        return self.logical_plan(
            self.decompose(query), select=query.select
        )

    def _translate(self, source_name, condition):
        local_label = self.mapping_module.to_local_label(
            source_name, condition.attribute
        )
        return (local_label, condition.op, condition.value)
