"""Content-addressed stage artifact cache.

Each executor stage (anchor semijoin, per-source enrichment,
reconcile, final answer construction) names its finished output by a
**stable content hash** over
everything that determines it: the stage kind, its normalized
conditions, the owning source's name *and version counter*, and the
upstream artifacts it consumed.  A repeated or overlapping query
recomputes the same key and skips the stage entirely — the
"Artifact exists? → reuse cached output" lifecycle of execution-DAG
engines, applied to the mediator's pipeline.

Two tiers back the store:

- an **in-memory LRU** (bounded entry count, shared by every
  execution of the owning mediator) holding pickled payloads;
- an optional **on-disk directory** (``--artifact-dir``) written with
  the same atomic temp+rename discipline as the persistence layer's
  flat files, each artifact digest-gated: the envelope records the
  payload's sha256, a corrupted or truncated file warns and reads as
  a miss (the stage recomputes — never a wrong answer, never a
  crash), mirroring the snapshot corruption contract.

A payload stored with ``live=True`` additionally keeps the payload
*object itself* alongside the blob in the memory tier, and ``get``
returns that object by reference instead of unpickling a copy.  This
exists for the answer-construction stage, whose payload (an OEM
answer graph) is far more expensive to rebuild from bytes than to
share — the same sharing contract as the mediator's result cache:
callers treat a returned live payload as immutable.  When the store
has no disk tier, a live put skips serialization entirely.

Invalidation needs no clocks and no sweeps: a mutated source bumps its
``version``, every stage key over that source changes, and stale
entries age out of the LRU.  Source *re-registration* (a different
store under the same name, possibly at the same version counter) goes
through :meth:`ArtifactStore.invalidate_source`, which drops every
entry tagged with the source.

Shared state is guarded through the :mod:`repro.util.locks` seam
(``new_lock``/``make_counters``), so the race checker observes the
store like any other federation lock; disk I/O happens outside the
lock (rule ANN004).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pickle
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sources.persistence import write_atomic
from repro.util.locks import make_counters, new_lock

#: Version of the artifact key recipe *and* the on-disk envelope.
#: Bumped whenever either changes shape, so artifacts written by a
#: different code line can never be misread — their keys simply never
#: match.
ARTIFACT_SCHEMA = 1

#: First line of every on-disk artifact file.
_MAGIC = b"annoda-artifact/1"

#: File suffix of on-disk artifacts.
ARTIFACT_SUFFIX = ".artifact"


def _canon(value: Any) -> str:
    """A deterministic, restart-stable text encoding of one key part.

    Only plain data participates in stage keys: scalars, strings,
    bytes, and containers thereof (dicts sorted by encoded key, sets
    sorted).  Condition-like objects (anything with an ``attribute``)
    normalize to their ``(label, op, value)`` triple.  Anything else
    raises ``TypeError`` — silently falling back to ``repr`` would
    embed memory addresses and break hash stability across processes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return json.dumps(value)
    if isinstance(value, (bytes, bytearray)):
        return f"bytes:{bytes(value).hex()}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            (_canon(key), _canon(item)) for key, item in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if hasattr(value, "attribute") and hasattr(value, "op"):
        return _canon((value.attribute, value.op, value.value))
    raise TypeError(
        f"value of type {type(value).__name__} cannot participate in a "
        f"stage key: {value!r}"
    )


def stage_key(
    kind: str,
    *,
    source: Optional[str] = None,
    version: Optional[int] = None,
    conditions: Iterable[Any] = (),
    upstream: Iterable[Any] = (),
    extra: Iterable[Any] = (),
) -> str:
    """The content address of one executor stage: a sha256 hexdigest
    over (schema, stage kind, source id + version, normalized
    conditions, upstream artifact hashes/content, extras).

    Stable across process restarts (no ``hash()``, no ids, no clock)
    and collision-safe by construction: every part goes through
    :func:`_canon`, which is injective on the supported value space.
    """
    text = _canon(
        [
            ARTIFACT_SCHEMA,
            kind,
            source,
            version,
            list(conditions),
            list(upstream),
            list(extra),
        ]
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Two-tier (memory LRU + optional disk) artifact store.

    ``get``/``put`` exchange *payloads* — plain picklable values; the
    store owns serialization, so the byte size it accounts is the real
    artifact size.  Thread-safe: the federated fetcher may finish
    stages on worker threads while another execution probes.
    """

    def __init__(
        self,
        directory: Optional[Any] = None,
        max_entries: int = 256,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.directory = (
            None if directory is None else pathlib.Path(directory)
        )
        self.max_entries = max_entries
        self._lock = new_lock("ArtifactStore._lock")
        #: key -> (blob, sources, live); insertion order is recency
        #: order (pop + reinsert on hit).  ``blob`` is ``None`` only
        #: for live entries of a disk-less store; ``live`` is ``None``
        #: for ordinary pickled entries.
        self._entries: Dict[
            str, Tuple[Optional[bytes], Tuple[str, ...], Any]
        ] = {}
        self._counters = make_counters(
            {"hits": 0, "misses": 0, "stores": 0, "invalidations": 0},
            lock=self._lock,
            owner="ArtifactStore",
        )
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- probing -------------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Any, int]]:
        """``(payload, byte_size)`` for a finished stage, or ``None``.

        Memory first; then the disk tier, whose artifact is only
        unpickled after its digest gate passes — a corrupted file
        warns, reads as a miss, and the stage recomputes.  A live
        entry returns its payload *by reference* (see the module
        docstring for the immutability contract).
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._entries[key] = entry  # re-insert: most recent
                self._counters["hits"] += 1
                blob, _sources, live = entry
            else:
                blob, live = None, None
        if live is not None:
            return live, 0 if blob is None else len(blob)
        if blob is not None:
            return pickle.loads(blob), len(blob)
        blob_sources = self._read_disk(key)
        if blob_sources is None:
            with self._lock:
                self._counters["misses"] += 1
            return None
        blob, sources = blob_sources
        with self._lock:
            self._counters["hits"] += 1
            self._remember_locked(key, blob, sources)
        return pickle.loads(blob), len(blob)

    def put(
        self,
        key: str,
        payload: Any,
        sources: Iterable[str] = (),
        live: bool = False,
    ) -> int:
        """Store one finished stage's payload; returns its byte size.

        ``sources`` tags the entry for :meth:`invalidate_source`.  The
        pickle and any disk write happen outside the lock.  With
        ``live=True`` the payload object itself is kept in the memory
        tier and later handed back by reference; a disk-less store
        then skips pickling altogether (reported size 0).
        """
        blob = (
            None
            if live and self.directory is None
            else pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        source_tags = tuple(sources)
        with self._lock:
            self._counters["stores"] += 1
            self._remember_locked(
                key, blob, source_tags, payload if live else None
            )
        if self.directory is not None and blob is not None:
            self._write_disk(key, blob, source_tags)
        return 0 if blob is None else len(blob)

    def _remember_locked(
        self,
        key: str,
        blob: Optional[bytes],
        sources: Tuple[str, ...],
        live: Any = None,
    ) -> None:
        self._entries.pop(key, None)
        self._entries[key] = (blob, sources, live)
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    # -- invalidation --------------------------------------------------------

    def invalidate_source(self, source_name: str) -> int:
        """Drop every artifact tagged with ``source_name`` (memory and
        disk); returns the number of entries dropped.

        Version bumps invalidate implicitly (the key changes); this
        handles re-registration — a *different* store under the same
        name whose version counter may coincide with the old one.
        """
        with self._lock:
            stale = [
                key
                for key, (_blob, sources, _live) in self._entries.items()
                if source_name in sources
            ]
            for key in stale:
                del self._entries[key]
            self._counters["invalidations"] += len(stale)
        dropped = len(stale)
        if self.directory is not None:
            dropped += self._invalidate_disk(source_name, set(stale))
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Cumulative store counters (hits/misses/stores/
        invalidations) plus the live entry count."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["entries"] = len(self._entries)
        return snapshot

    # -- disk tier -----------------------------------------------------------

    def _path_for(self, key: str) -> pathlib.Path:
        assert self.directory is not None
        return self.directory / f"{key}{ARTIFACT_SUFFIX}"

    def _write_disk(
        self, key: str, blob: bytes, sources: Tuple[str, ...]
    ) -> None:
        header = json.dumps(
            {
                "schema": ARTIFACT_SCHEMA,
                "digest": hashlib.sha256(blob).hexdigest(),
                "sources": list(sources),
            },
            sort_keys=True,
        ).encode("utf-8")
        write_atomic(
            self._path_for(key), _MAGIC + b"\n" + header + b"\n" + blob
        )

    def _read_disk(
        self, key: str
    ) -> Optional[Tuple[bytes, Tuple[str, ...]]]:
        if self.directory is None:
            return None
        path = self._path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            magic, header_line, blob = data.split(b"\n", 2)
            if magic != _MAGIC:
                raise ValueError("bad magic")
            header = json.loads(header_line.decode("utf-8"))
            if header.get("schema") != ARTIFACT_SCHEMA:
                raise ValueError("unsupported schema")
            if hashlib.sha256(blob).hexdigest() != header["digest"]:
                raise ValueError("payload digest mismatch")
            sources = tuple(header.get("sources", ()))
        except (KeyError, TypeError, ValueError) as exc:
            warnings.warn(
                f"artifact {path.name} is corrupted ({exc}); "
                "recomputing the stage",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return blob, sources

    def _invalidate_disk(
        self, source_name: str, already_dropped: set
    ) -> int:
        assert self.directory is not None
        dropped = 0
        try:
            paths = sorted(self.directory.glob(f"*{ARTIFACT_SUFFIX}"))
        except OSError:
            return 0
        for path in paths:
            key = path.name[: -len(ARTIFACT_SUFFIX)]
            read = self._read_disk(key)
            tagged = read is not None and source_name in read[1]
            if tagged or read is None or key in already_dropped:
                # A corrupted artifact is dropped too: it can never be
                # read back, so keeping it only re-warns forever.
                try:
                    path.unlink()
                except OSError:
                    continue
                if tagged and key not in already_dropped:
                    dropped += 1
        return dropped
