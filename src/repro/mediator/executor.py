"""Plan execution: fetch through wrappers, reconcile, combine into OEM.

The executor realizes the federated promise of section 3.1: it ships
each plan step to the owning wrapper, evaluates residual predicates at
the mediator, applies the reconciler while joining link constraints,
and materializes one integrated OEM answer graph — *"their results
combined before being returned to the user"*.

Per-source fetches go through the :mod:`repro.mediator.fetch`
protocol: independent steps (link-step anchor retrieval, enrichment
detail) are issued concurrently by a :class:`FederatedFetcher`, and a
failing or slow source either aborts the query (the default) or —
under a degrading :class:`FederationPolicy` — yields a *partial*
integrated answer whose :class:`ExecutionReport` marks the source
degraded.
"""

import time
from dataclasses import dataclass, field

from repro.mediator.artifacts import stage_key
from repro.mediator.columnar import (
    bind_residual,
    dedup_rows,
    filter_positions,
    merge_rows,
)
from repro.mediator.fetch import (
    FederatedFetcher,
    FederationPolicy,
    FetchRequest,
)
from repro.mediator.scheduler import StageScheduler
from repro.oem.graph import OEMGraph
from repro.oem.types import OEMType
from repro.sources.base import NativeCondition, _evaluate
from repro.sources.batch import RecordBatch
from repro.trace.recorder import NULL_RECORDER
from repro.util.errors import IntegrationError
from repro.util.locks import new_lock


def _delta_counter(span, name, delta):
    """Attach a phase-local counter delta to ``span`` (zeros are
    omitted so traces only carry counters that did work)."""
    if delta:
        span.set_counter(name, delta)


@dataclass
class SourceReport:
    """Per-source fetch accounting for one execution."""

    source: str
    fetches: int = 0
    rows: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    seconds: float = 0.0
    status: str = "ok"  # "ok" | "degraded"


@dataclass
class ExecutionStats:
    """Work accounting used by the optimizer/architecture benchmarks.

    Prefer reading these counters through
    :attr:`IntegratedResult.report` (an :class:`ExecutionReport`);
    direct access remains for existing callers.
    """

    rows_fetched: dict = field(default_factory=dict)
    residual_evaluations: int = 0
    anchors_considered: int = 0
    anchors_returned: int = 0
    wall_seconds: float = 0.0
    #: Source-level fetch-path accounting for this execution: native
    #: queries answered from an equality index vs by scanning.
    index_hits: int = 0
    scan_fetches: int = 0
    #: Cold-start accounting: equality indexes this execution had to
    #: (re)build by scanning an extent vs indexes the sources adopted
    #: from a persisted snapshot (``repro.sources.persistence``) while
    #: this execution ran.  A warm federation shows 0/0.
    indexes_rebuilt: int = 0
    indexes_adopted: int = 0
    #: Batched ``in`` fetches the executor issued instead of per-id
    #: fetch loops (semijoin anchors, enrichment detail).
    batched_fetches: int = 0
    #: Link-source enrichment indexes served entirely from the
    #: mediator's version-keyed cache (no source fetch at all).
    enrichment_cache_hits: int = 0
    #: Fault-tolerance accounting: attempts beyond the first, attempts
    #: abandoned on timeout, and fetch batches issued concurrently.
    retries: int = 0
    timeouts: int = 0
    concurrent_batches: int = 0
    #: Shard-grid accounting: logical fetches the stage scheduler
    #: fanned out across a shard grid, and fetches a replica set
    #: answered from a sibling after the placed replica failed.
    shard_fans: int = 0
    replica_failovers: int = 0
    #: Rows that crossed the wrapper boundary inside columnar
    #: :class:`~repro.sources.batch.RecordBatch` replies (0 on the
    #: record-at-a-time path).
    batch_rows: int = 0
    #: Stage artifact cache accounting: stages skipped because a
    #: content-addressed artifact existed, stages that had to run, and
    #: artifact bytes moved (read on hits + written on stores).
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_bytes: int = 0
    #: Sources that failed but were tolerated (degrading policy): the
    #: answer is partial with respect to them.
    degraded_sources: list = field(default_factory=list)
    #: Per-source fetch reports (name -> :class:`SourceReport`).
    source_reports: dict = field(default_factory=dict)

    def total_rows_fetched(self):
        return sum(self.rows_fetched.values())

    def add_fetch(self, source_name, count):
        self.rows_fetched[source_name] = (
            self.rows_fetched.get(source_name, 0) + count
        )

    def record_reply(self, reply):
        """Fold one :class:`~repro.mediator.fetch.FetchReply` in."""
        self.add_fetch(reply.source, len(reply.records))
        self.retries += reply.retries
        self.timeouts += reply.timeouts
        report = self.source_reports.setdefault(
            reply.source, SourceReport(reply.source)
        )
        report.fetches += 1
        report.rows += len(reply.records)
        report.attempts += len(reply.attempts)
        report.retries += reply.retries
        report.timeouts += reply.timeouts
        report.seconds += reply.elapsed

    def mark_degraded(self, source_name):
        if source_name not in self.degraded_sources:
            self.degraded_sources.append(source_name)
        report = self.source_reports.setdefault(
            source_name, SourceReport(source_name)
        )
        report.status = "degraded"


class ExecutionReport:
    """One unified view of everything an execution did.

    Merges the split accounting of earlier revisions — the sources'
    ``fetch_stats`` dicts, :class:`ExecutionStats` counters, and the
    reconciliation report — behind a single object exposed as
    :attr:`IntegratedResult.report`: sources queried with per-source
    latency/status, index hits, batches, retries, timeouts, degraded
    sources, plus the reconciliation outcome under
    :attr:`reconciliation`.

    Counter attributes (``index_hits``, ``batched_fetches``,
    ``rows_fetched``, ...) delegate to the underlying
    :class:`ExecutionStats`; reconciliation conflicts live on
    ``result.reconciliation``.
    """

    def __init__(self, stats, reconciliation):
        self._stats = stats
        self.reconciliation = reconciliation

    # -- unified accounting --------------------------------------------------

    @property
    def sources(self):
        """Per-source fetch reports (name -> :class:`SourceReport`)."""
        return dict(self._stats.source_reports)

    @property
    def degraded(self):
        """Names of sources the answer is partial with respect to."""
        return tuple(self._stats.degraded_sources)

    @property
    def ok(self):
        """True when no source degraded (the answer is complete)."""
        return not self._stats.degraded_sources

    def __getattr__(self, name):
        stats = self.__dict__.get("_stats")
        if stats is None:
            raise AttributeError(name)
        try:
            return getattr(stats, name)
        except AttributeError:
            raise AttributeError(
                f"ExecutionReport has no attribute {name!r}"
            ) from None

    def describe(self):
        """Multi-line human-readable execution summary."""
        stats = self._stats
        lines = [
            f"execution report: {stats.total_rows_fetched()} rows from "
            f"{len(stats.source_reports)} source(s) in "
            f"{stats.wall_seconds * 1e3:.1f} ms",
            f"  index hits {stats.index_hits} / scans "
            f"{stats.scan_fetches} / batched fetches "
            f"{stats.batched_fetches} / enrichment cache hits "
            f"{stats.enrichment_cache_hits}",
            f"  cold start: {stats.indexes_rebuilt} index(es) rebuilt, "
            f"{stats.indexes_adopted} adopted from snapshot",
            f"  anchors {stats.anchors_returned}/{stats.anchors_considered} "
            f"kept / residual evaluations {stats.residual_evaluations}",
            f"  retries {stats.retries} / timeouts {stats.timeouts} / "
            f"concurrent batches {stats.concurrent_batches}",
            f"  shard fans {stats.shard_fans} / replica failovers "
            f"{stats.replica_failovers}",
            f"  columnar rows {stats.batch_rows} / artifact hits "
            f"{stats.artifact_hits} / misses {stats.artifact_misses} / "
            f"bytes {stats.artifact_bytes}",
        ]
        for name in sorted(stats.source_reports):
            report = stats.source_reports[name]
            lines.append(
                f"  {name}: {report.status}, {report.fetches} fetch(es), "
                f"{report.rows} rows, {report.attempts} attempt(s), "
                f"{report.seconds * 1e3:.1f} ms"
            )
        if stats.degraded_sources:
            lines.append(
                "  PARTIAL ANSWER — degraded: "
                + ", ".join(sorted(stats.degraded_sources))
            )
        return "\n".join(lines)


class IntegratedResult:
    """One integrated answer: OEM view + plain records + diagnostics.

    ``result.report`` is the unified :class:`ExecutionReport`;
    ``result.reconciliation`` the
    :class:`~repro.mediator.reconcile.ReconciliationReport`.
    ``result.stats`` (the raw :class:`ExecutionStats`) remains as a
    deprecated alias — everything it carries is reachable through
    ``result.report``.
    """

    def __init__(self, graph, root, genes, reconciliation, stats, plan):
        self.graph = graph
        self.root = root
        self.genes = genes
        self.reconciliation = reconciliation
        self.stats = stats
        self.report = ExecutionReport(stats, reconciliation)
        self.plan = plan
        #: The query flight-recorder tree (a
        #: :class:`~repro.trace.recorder.Span`), set by the mediator
        #: when the query ran with tracing on; ``None`` otherwise.
        self.trace = None
        #: Set by the mediator when this (shared) result was served
        #: from its result cache; consumers accounting for execution
        #: work (e.g. service metrics) use it to skip warm replays.
        self.from_result_cache = False
        # GeneID -> gene dict, first occurrence winning, so lookups are
        # O(1) instead of a scan per call.
        self._genes_by_id = {}
        for gene in genes:
            self._genes_by_id.setdefault(gene["GeneID"], gene)

    def __len__(self):
        return len(self.genes)

    def gene_ids(self):
        return [gene["GeneID"] for gene in self.genes]

    def gene(self, gene_id):
        try:
            return self._genes_by_id[gene_id]
        except KeyError:
            raise IntegrationError(
                f"no gene {gene_id} in this result"
            ) from None

    def __repr__(self):
        partial = (
            f", degraded: {', '.join(self.report.degraded)}"
            if self.report.degraded
            else ""
        )
        return (
            f"IntegratedResult({len(self.genes)} genes, "
            f"{self.reconciliation.count()} conflicts observed{partial})"
        )


class Executor:
    """Walk :class:`~repro.mediator.plan.PhysicalPlan` stage DAGs.

    Every :class:`~repro.mediator.plan.FetchStage` carries its full
    intent — pushed/residual/closure condition split, link join shape,
    pruning decision, semijoin driver index — so execution only reads
    the plan, never re-derives it.

    ``enrichment_cache`` is a dict the owning mediator shares across
    executions; entries are keyed on the source *and its version
    counter*, so a cache hit is always as fresh as a re-fetch and any
    source mutation invalidates automatically.  ``batch_fetch=False``
    restores the per-id (N+1) fetch loops — the benchmarks measure the
    batched path against it.

    ``fetcher`` (a :class:`~repro.mediator.fetch.FederatedFetcher`)
    issues the plan's independent per-source fetches concurrently and
    applies the ``policy``'s timeout/retry/degradation semantics; the
    owning mediator shares one fetcher (and its thread pool) across
    executions.

    ``columnar`` (the default) requests
    :class:`~repro.sources.batch.RecordBatch` replies across the
    wrapper boundary and runs the vectorized residual/semijoin/
    reconcile operators of :mod:`repro.mediator.columnar`; ``False``
    restores the record-at-a-time loops (the benchmarks compare the
    two).  ``artifacts`` (an
    :class:`~repro.mediator.artifacts.ArtifactStore`, or ``None`` to
    disable) lets finished stages be skipped by content address.
    """

    #: Upper bound on shared-cache entries (stale versions are evicted
    #: eagerly; this bounds distinct live sources x index kinds).
    CACHE_MAX_ENTRIES = 64

    def __init__(self, wrappers_by_name, mapping_module, reconciler,
                 enrichment_cache=None, enrichment_cache_lock=None,
                 batch_fetch=True, fetcher=None,
                 policy=None, columnar=True, artifacts=None, budget=None):
        self.wrappers = wrappers_by_name
        self.mapping_module = mapping_module
        self.reconciler = reconciler
        self.batch_fetch = batch_fetch
        self.columnar = columnar
        self.artifacts = artifacts
        #: Cooperative per-request :class:`~repro.util.cancel.RequestBudget`
        #: stamped onto every fetch this execution issues; an expired
        #: or cancelled budget makes remaining fetches return
        #: ``timeout`` replies immediately, so the federation policy
        #: degrades (or aborts) instead of hanging a worker.
        self.budget = budget
        if fetcher is None:
            self.policy = policy or FederationPolicy()
            self.fetcher = FederatedFetcher(self.policy)
        else:
            self.fetcher = fetcher
            self.policy = policy or fetcher.policy
        self._shared_cache = (
            enrichment_cache if enrichment_cache is not None else {}
        )
        # The enrichment/symbol cache is shared by every execution the
        # owning mediator runs — concurrently, under the service's
        # worker pool — so its get/evict/store sequences take a lock
        # (the mediator passes one lock for all executors it builds).
        self._shared_cache_lock = (
            enrichment_cache_lock if enrichment_cache_lock is not None
            else new_lock("Executor._shared_cache_lock")
        )
        # Places each plan stage's fetch on the wrappers' (shard,
        # replica) grid: logical requests expand to shard-pinned
        # physical requests and shard partials merge back.
        self._scheduler = StageScheduler()

    def _fetch_request(self, conditions, purpose, columnar=None):
        """A :class:`FetchRequest` carrying this execution's budget."""
        return FetchRequest(
            conditions,
            purpose=purpose,
            columnar=self.columnar if columnar is None else columnar,
            budget=self.budget,
        )

    # -- shared version-keyed cache ---------------------------------------------

    def _cache_entry(self, key):
        with self._shared_cache_lock:
            return self._shared_cache.get(key)

    def _cache_store(self, key, value):
        """Insert one cache entry, evicting stale versions of the same
        source/kind first and bounding the total entry count."""
        kind, source_name = key[0], key[1]
        with self._shared_cache_lock:
            stale = [
                existing
                for existing in self._shared_cache
                if existing[0] == kind
                and existing[1] == source_name
                and existing != key
            ]
            for existing in stale:
                del self._shared_cache[existing]
            while len(self._shared_cache) >= self.CACHE_MAX_ENTRIES:
                oldest = next(iter(self._shared_cache))
                del self._shared_cache[oldest]
            self._shared_cache[key] = value

    def _failover_snapshot(self):
        """Cumulative replica failovers summed over the federation's
        replica sets (executions compute deltas against it)."""
        total = 0
        for wrapper in self.wrappers.values():
            count = getattr(wrapper, "failover_count", None)
            if callable(count):
                total += count()
        return total

    def _sched_fetch_all(self, jobs, stats, recorder=NULL_RECORDER):
        """Shard-aware fetch batch: expand each logical ``(wrapper,
        request)`` job onto the wrapper's shard grid, ship every
        physical request through one fetcher batch, and merge each
        job's shard partials back into one logical reply, returned in
        job order.

        Accounting stays physical — every shard partial folds into
        ``stats`` individually, so per-source fetch counts and
        retry/timeout totals reflect what actually crossed the pool —
        while callers only ever see the merged logical replies.
        """
        jobs = list(jobs)
        expanded = []
        bounds = []
        for wrapper, request in jobs:
            physical = self._scheduler.expand(wrapper, request)
            bounds.append((len(expanded), len(expanded) + len(physical)))
            expanded.extend((wrapper, part) for part in physical)
        replies = self.fetcher.fetch_all(expanded, recorder=recorder)
        merged = []
        for (wrapper, request), (start, stop) in zip(jobs, bounds):
            parts = replies[start:stop]
            for part in parts:
                stats.record_reply(part)
            if len(parts) > 1:
                stats.shard_fans += 1
            merged.append(
                self._scheduler.merge(wrapper.name, request, parts)
            )
        return merged

    def _sched_fetch(self, wrapper, request, stats,
                     recorder=NULL_RECORDER):
        """One logical fetch placed on the shard grid."""
        return self._sched_fetch_all(
            [(wrapper, request)], stats, recorder=recorder
        )[0]

    def _fetchpath_snapshot(self):
        """Cumulative per-source index/scan counters, summed over the
        federation (executions compute deltas against it)."""
        totals = {
            "index_hits": 0,
            "scan_queries": 0,
            "index_builds": 0,
            "index_adoptions": 0,
        }
        for wrapper in self.wrappers.values():
            source = getattr(wrapper, "source", None)
            fetch_stats = getattr(source, "fetch_stats", None)
            if fetch_stats is None:
                continue
            for counter, value in fetch_stats().items():
                totals[counter] = totals.get(counter, 0) + value
        return totals

    # -- entry point ------------------------------------------------------------

    def execute(self, plan, query, enrich_links=True,
                recorder=NULL_RECORDER):
        started = time.perf_counter()
        stats = ExecutionStats()
        counters_before = self._fetchpath_snapshot()
        failovers_before = self._failover_snapshot()
        from repro.mediator.reconcile import ReconciliationReport

        report = ReconciliationReport()

        anchor_wrapper = self.wrappers[plan.anchor.source_name]

        with recorder.span(
            "execute",
            attributes={
                "anchor": plan.anchor.source_name,
                "link_steps": len(plan.link_steps),
            },
        ) as execute_span:
            result = self._execute_traced(
                plan, query, enrich_links, recorder, stats, report,
                anchor_wrapper,
            )
            counters_after = self._fetchpath_snapshot()
            stats.index_hits = (
                counters_after["index_hits"] - counters_before["index_hits"]
            )
            stats.scan_fetches = (
                counters_after["scan_queries"]
                - counters_before["scan_queries"]
            )
            stats.indexes_rebuilt = (
                counters_after["index_builds"]
                - counters_before["index_builds"]
            )
            stats.indexes_adopted = (
                counters_after["index_adoptions"]
                - counters_before["index_adoptions"]
            )
            # The fetch-path counters are whole-execution deltas over
            # the sources' cumulative accounting, so they belong to the
            # execute span itself, not to any one fetch below it.
            _delta_counter(execute_span, "index_hits", stats.index_hits)
            _delta_counter(execute_span, "scan_fetches", stats.scan_fetches)
            _delta_counter(
                execute_span, "indexes_rebuilt", stats.indexes_rebuilt
            )
            _delta_counter(
                execute_span, "indexes_adopted", stats.indexes_adopted
            )
            # Grid accounting: shard fan-outs are counted as the
            # scheduler merges, replica failovers as a delta over the
            # replica sets' cumulative counters (failover happens
            # inside the pool, below this execution's view).
            stats.replica_failovers = (
                self._failover_snapshot() - failovers_before
            )
            _delta_counter(execute_span, "shard_fans", stats.shard_fans)
            _delta_counter(
                execute_span, "replica_failovers",
                stats.replica_failovers,
            )
            # Columnar/artifact accounting is likewise whole-execution:
            # rows arriving as batches, and stages skipped or run
            # against the content-addressed artifact store.
            _delta_counter(execute_span, "batch_rows", stats.batch_rows)
            _delta_counter(
                execute_span, "artifact_hits", stats.artifact_hits
            )
            _delta_counter(
                execute_span, "artifact_misses", stats.artifact_misses
            )
            _delta_counter(
                execute_span, "artifact_bytes", stats.artifact_bytes
            )
            stats.wall_seconds = time.perf_counter() - started
            if stats.degraded_sources:
                execute_span.set(
                    "degraded", sorted(stats.degraded_sources)
                )
        return result

    def _execute_traced(self, plan, query, enrich_links, recorder, stats,
                        report, anchor_wrapper):
        """The execute body, running inside the ``execute`` span."""
        # -- whole-answer artifact ------------------------------------------
        # The answer key is computable from the plan and the sources'
        # versions alone, so a repeated query can skip fetch,
        # reconcile and answer construction in one probe.  Traced
        # runs never read it (a hit would replay nothing and the
        # trace would be empty — the same rule as the result cache)
        # but still store, priming later untraced repeats.
        answer_key = self._answer_artifact_key(
            plan, query, anchor_wrapper, enrich_links
        )
        if answer_key is not None and not recorder.enabled:
            answer = self._artifact_get(answer_key, stats)
            if answer is not None:
                report.issues.extend(answer["issues"])
                return IntegratedResult(
                    answer["graph"], answer["root"], answer["genes"],
                    report, stats, plan,
                )

        # -- stage placement ------------------------------------------------
        # Where each plan stage's fetch lands on the (shard, replica)
        # grid — the same placement `explain` prints, preserved in the
        # flight recorder for executed queries.
        with recorder.span("schedule:place") as place_span:
            grid = self._scheduler.plan_grid(plan, self.wrappers)
            place_span.set("stages", len(grid))
            place_span.set(
                "grid", [entry.describe() for entry in grid]
            )

        # -- concurrent prefetch batch -------------------------------------
        # Every conditioned link-step fetch is independent of every
        # other, and of the (non-semijoin) anchor fetch: one batch on
        # the fetcher covers them all.  Replies are processed in job
        # order on this thread, so the execution stays deterministic.
        jobs = []
        for step in plan.link_steps:
            if step.link.reverse_join or not step.pruned:
                jobs.append((step, self.wrappers[step.source_name]))
        if plan.anchor.semijoin is None:
            jobs.append((plan.anchor, anchor_wrapper))

        self._degraded_steps = set()
        step_records = {}
        anchor_records = None
        with recorder.span(
            "fetch", attributes={"jobs": len(jobs)}
        ) as fetch_span:
            residual_before = stats.residual_evaluations
            replies = self._sched_fetch_all(
                [
                    (wrapper,
                     self._fetch_request(tuple(step.pushed),
                                         purpose=step.purpose))
                    for step, wrapper in jobs
                ],
                stats,
                recorder=recorder,
            )
            if len(jobs) > 1 and self.policy.max_workers > 1:
                stats.concurrent_batches += 1
                fetch_span.incr("concurrent_batches")

            for (step, wrapper), reply in zip(jobs, replies):
                if not reply.ok:
                    self._degrade_or_raise(reply, stats)
                    if step is plan.anchor:
                        anchor_records = (
                            RecordBatch.empty() if self.columnar else []
                        )
                    else:
                        self._degraded_steps.add(id(step))
                    continue
                records = self._ingest_reply(wrapper, step, reply, stats)
                if step is plan.anchor:
                    anchor_records = records
                else:
                    step_records[id(step)] = records
            _delta_counter(
                fetch_span, "residual_evaluations",
                stats.residual_evaluations - residual_before,
            )

        # -- per-step state computed once, not per anchor record ----------
        # The allowed-id set of conditioned link steps, and the symbol
        # vocabulary index for symbol joins.
        allowed_by_step = {}
        self._symbol_indexes = {}
        self._reverse_indexes = {}
        for step in plan.link_steps:
            degraded_step = id(step) in self._degraded_steps
            if step.link.reverse_join and not degraded_step:
                index, conditioned_keys = self._reverse_index(
                    step, step_records[id(step)]
                )
                self._reverse_indexes[id(step)] = index
                allowed_by_step[id(step)] = conditioned_keys
            elif not step.pruned and not degraded_step:
                allowed_by_step[id(step)] = self._allowed_ids(
                    step, self.wrappers[step.source_name],
                    step_records[id(step)],
                )
            if step.link.symbol_join and not degraded_step:
                self._build_symbol_index(step, stats)

        if anchor_records is None:
            with recorder.span(
                "anchor",
                attributes={"source": plan.anchor.source_name},
            ) as anchor_span:
                residual_before = stats.residual_evaluations
                batched_before = stats.batched_fetches
                anchor_records = self._semijoin_anchor(
                    plan, allowed_by_step, stats, recorder
                )
                _delta_counter(
                    anchor_span, "batched_fetches",
                    stats.batched_fetches - batched_before,
                )
                _delta_counter(
                    anchor_span, "residual_evaluations",
                    stats.residual_evaluations - residual_before,
                )
                anchor_span.set("records", len(anchor_records))

        with recorder.span("reconcile") as reconcile_span:
            stats.anchors_considered = len(anchor_records)

            artifact_key = self._reconcile_artifact_key(plan, anchor_wrapper)
            cached_reconcile = (
                None
                if artifact_key is None
                else self._artifact_get(artifact_key, stats)
            )
            if cached_reconcile is not None:
                surviving = cached_reconcile["surviving"]
                matched_links = cached_reconcile["matched_links"]
                report.issues.extend(cached_reconcile["issues"])
            else:
                issues_before = len(report.issues)
                if isinstance(anchor_records, RecordBatch):
                    surviving, matched_links = self._reconcile_columnar(
                        plan, anchor_wrapper, anchor_records, stats,
                        report, allowed_by_step,
                    )
                else:
                    surviving, matched_links = self._reconcile_records(
                        plan, anchor_wrapper, anchor_records, stats,
                        report, allowed_by_step,
                    )
                if artifact_key is not None:
                    self._artifact_put(
                        artifact_key,
                        {
                            "surviving": surviving,
                            "matched_links": matched_links,
                            "issues": list(
                                report.issues[issues_before:]
                            ),
                        },
                        stats,
                        sources=self._plan_sources(plan),
                    )
            stats.anchors_returned = len(surviving)
            reconcile_span.set_counter(
                "anchors_considered", stats.anchors_considered
            )
            reconcile_span.set_counter(
                "anchors_returned", stats.anchors_returned
            )
            _delta_counter(reconcile_span, "conflicts", report.count())
            _delta_counter(
                reconcile_span, "repaired", report.repaired_count()
            )

        with recorder.span(
            "navigate", attributes={"enrich": bool(enrich_links)}
        ) as navigate_span:
            genes, graph, root = self._combine(
                plan, query, anchor_wrapper, surviving, matched_links,
                enrich_links, stats, recorder,
            )
            navigate_span.set("genes", len(genes))
        # Only a clean run is a reusable answer: a degraded execution
        # is missing data that these source versions *can* provide.
        if (
            answer_key is not None
            and not self._degraded_steps
            and not stats.degraded_sources
        ):
            self._artifact_put(
                answer_key,
                {
                    "genes": genes,
                    "graph": graph,
                    "root": root,
                    "issues": list(report.issues),
                },
                stats,
                sources=self._plan_sources(plan),
                live=True,
            )
        return IntegratedResult(graph, root, genes, report, stats, plan)

    # -- fetching ---------------------------------------------------------------

    def _degrade_or_raise(self, reply, stats):
        """Handle one failed reply per the federation policy.

        Raising reports an :class:`IntegrationError` naming the source,
        so federated callers see *which* member broke, not a bare
        traceback; degrading records the source as a gap in the answer.
        """
        if not self.policy.degrades:
            reply.raise_if_failed()
        stats.mark_degraded(reply.source)

    def _apply_residual(self, wrapper, step, records, stats):
        """Mediator-side residual predicates over fetched records."""
        if not step.residual:
            return records
        kept = []
        for record in records:
            stats.residual_evaluations += len(step.residual)
            if self._residual_ok(wrapper, record, step.residual):
                kept.append(record)
        return kept

    def _ingest_reply(self, wrapper, step, reply, stats):
        """One ok reply -> residual-filtered records (or batch).

        On the columnar path the reply carries a
        :class:`RecordBatch`; a plain record list (a wrapper that
        ignores ``columnar``) is pivoted on arrival so every operator
        downstream sees one representation.
        """
        if not self.columnar and not isinstance(reply.records, RecordBatch):
            return self._apply_residual(
                wrapper, step, list(reply.records), stats
            )
        batch = self._as_batch(reply.records)
        stats.batch_rows += len(batch)
        return self._apply_residual_batch(wrapper, step, batch, stats)

    @staticmethod
    def _as_batch(records):
        if isinstance(records, RecordBatch):
            return records
        return RecordBatch.from_records(list(records))

    def _apply_residual_batch(self, wrapper, step, batch, stats):
        """Vectorized residual predicates: each condition walks one
        column (same per-record accounting as the record path)."""
        if not step.residual:
            return batch
        stats.residual_evaluations += len(step.residual) * len(batch)
        return batch.take(
            filter_positions(batch, bind_residual(wrapper, step.residual))
        )

    def _build_symbol_index(self, step, stats):
        """Version-keyed symbol-join index for one step (cached)."""
        from repro.mediator.reconcile import SymbolIndex

        wrapper = self.wrappers[step.source_name]
        symbol_local = self.mapping_module.correspondences(
            step.source_name
        ).to_local("GeneSymbol")
        if symbol_local is None:
            return
        key_label = self.mapping_module.to_local_label(
            step.source_name, step.link.via
        )
        cache_key = (
            "symbols",
            step.source_name,
            wrapper.version,
            key_label,
            symbol_local,
        )
        symbol_index = self._cache_entry(cache_key)
        if symbol_index is None:
            try:
                symbol_index = SymbolIndex.from_wrapper(
                    wrapper,
                    key_label=key_label,
                    symbol_label=symbol_local,
                    budget=self.budget,
                )
            except Exception as exc:
                if not self.policy.degrades:
                    raise IntegrationError(
                        f"source {step.source_name!r} failed during "
                        f"fetch: {exc}"
                    ) from exc
                # Partial answer: the symbol join contributes nothing.
                stats.mark_degraded(step.source_name)
                return
            self._cache_store(cache_key, symbol_index)
        self._symbol_indexes[step.source_name] = symbol_index

    def _reverse_index(self, step, records):
        """anchor GeneID -> set of link keys, from the linked source's
        back-references (conditioned records only)."""
        wrapper = self.wrappers[step.source_name]
        key_field = wrapper.source_field(
            self.mapping_module.to_local_label(
                step.source_name, step.link.via
            )
        )
        gene_field = wrapper.source_field(
            self.mapping_module.to_local_label(step.source_name, "GeneID")
        )
        index = {}
        conditioned_keys = set()
        if isinstance(records, RecordBatch):
            # Columnar: two column walks instead of per-record lookups.
            for key, anchor_ref in zip(
                records.values(key_field), records.values(gene_field)
            ):
                conditioned_keys.add(key)
                if anchor_ref:
                    index.setdefault(anchor_ref, set()).add(key)
            return index, conditioned_keys
        for record in records:
            conditioned_keys.add(record[key_field])
            anchor_ref = record.get(gene_field)
            if anchor_ref:
                index.setdefault(anchor_ref, set()).add(record[key_field])
        return index, conditioned_keys

    def _semijoin_anchor(self, plan, allowed_by_step, stats,
                         recorder=NULL_RECORDER):
        """Retrieve the anchor by link-id equality instead of scanning.

        The driving link's allowed-id set is already computed; one
        batched ``in`` fetch retrieves every anchor carrying any of its
        ids alongside the anchor's pushed conditions (the N+1-free
        path).  Wrappers that cannot push ``in`` down fall back to the
        per-id equality loop.  Either way the results are de-duplicated
        by identity key and residual-filtered identically.

        A degraded driving link leaves no id set to join on, so the
        anchor falls back to its own conditioned fetch (the constraint
        is skipped — partial answer).
        """
        driver_source, via_label = plan.anchor.semijoin
        # The planner resolved the driving step at lowering time; the
        # executor never re-infers plan intent.
        driver_step = plan.link_steps[plan.driver_index]
        wrapper = self.wrappers[plan.anchor.source_name]
        key_local = self.mapping_module.to_local_label(
            wrapper.name, "GeneID"
        )
        key_field = wrapper.source_field(key_local)
        if id(driver_step) in self._degraded_steps:
            reply = self._sched_fetch(
                wrapper,
                self._fetch_request(tuple(plan.anchor.pushed),
                                    purpose="anchor"),
                stats,
                recorder=recorder,
            )
            if not reply.ok:
                self._degrade_or_raise(reply, stats)
                return RecordBatch.empty() if self.columnar else []
            return self._ingest_reply(wrapper, plan.anchor, reply, stats)
        allowed = allowed_by_step[id(driver_step)]
        # Ensure the anchor source appears in the fetch accounting
        # exactly once even when the driving link matched nothing.
        stats.add_fetch(wrapper.name, 0)
        ordered_ids = sorted(allowed, key=str)

        # The stage's content address: the driving link's output (the
        # id set itself) plus the anchor's version and conditions fully
        # determine the deduped, residual-filtered, sorted anchor set.
        artifact_key = None
        if self.artifacts is not None:
            driver_wrapper = self.wrappers[driver_source]
            artifact_key = stage_key(
                "anchor-semijoin",
                source=wrapper.name,
                version=wrapper.version,
                conditions=tuple(plan.anchor.pushed)
                + tuple(plan.anchor.residual),
                upstream=(
                    (driver_source, driver_wrapper.version),
                    tuple(ordered_ids),
                ),
                extra=(via_label, bool(self.columnar)),
            )
            payload = self._artifact_get(artifact_key, stats)
            if payload is not None:
                if self.columnar:
                    return RecordBatch.from_payload(payload)
                return list(payload["records"])

        batches = []
        anchor_failed = False
        if not ordered_ids:
            batches = []
        elif self.batch_fetch and wrapper.supports(via_label, "in"):
            reply = self._sched_fetch(
                wrapper,
                self._fetch_request(
                    tuple(plan.anchor.pushed)
                    + ((via_label, "in", tuple(ordered_ids)),),
                    purpose="anchor-semijoin",
                ),
                stats,
                recorder=recorder,
            )
            if reply.ok:
                stats.batched_fetches += 1
                batches.append(reply.records)
            else:
                self._degrade_or_raise(reply, stats)
                anchor_failed = True
        else:
            for link_id in ordered_ids:
                reply = self._sched_fetch(
                    wrapper,
                    self._fetch_request(
                        tuple(plan.anchor.pushed)
                        + ((via_label, "=", link_id),),
                        purpose="anchor-per-id",
                    ),
                    stats,
                    recorder=recorder,
                )
                if not reply.ok:
                    self._degrade_or_raise(reply, stats)
                    anchor_failed = True
                    break
                batches.append(reply.records)
        if anchor_failed:
            return RecordBatch.empty() if self.columnar else []
        if self.columnar:
            result = self._dedup_anchor_columnar(
                plan, wrapper, key_field, batches, stats
            )
            if artifact_key is not None:
                self._artifact_put(
                    artifact_key, result.to_payload(), stats,
                    sources=(wrapper.name, driver_source),
                )
            return result
        seen = set()
        records = []
        for fetched in batches:
            for record in fetched:
                key = record[key_field]
                if key in seen:
                    continue
                seen.add(key)
                if plan.anchor.residual:
                    stats.residual_evaluations += len(plan.anchor.residual)
                    if not self._residual_ok(
                        wrapper, record, plan.anchor.residual
                    ):
                        continue
                records.append(record)
        records.sort(key=lambda record: record[key_field])
        if artifact_key is not None:
            self._artifact_put(
                artifact_key, {"records": records}, stats,
                sources=(wrapper.name, driver_source),
            )
        return records

    def _dedup_anchor_columnar(self, plan, wrapper, key_field, batches,
                               stats):
        """Columnar dedup + residual + sort over the semijoin's fetch
        batches (exact twin of the record loop below, including the
        per-unique-record residual accounting)."""
        batches = [self._as_batch(fetched) for fetched in batches]
        for batch in batches:
            stats.batch_rows += len(batch)
        unique = dedup_rows(batches, key_field)
        if plan.anchor.residual:
            bound = bind_residual(wrapper, plan.anchor.residual)
            residual_count = len(plan.anchor.residual)
            kept = []
            columns_by_batch = {}
            for key, batch_index, row in unique:
                stats.residual_evaluations += residual_count
                columns = columns_by_batch.get(batch_index)
                if columns is None:
                    columns = [
                        (batches[batch_index].values(field), condition)
                        for field, condition in bound
                    ]
                    columns_by_batch[batch_index] = columns
                if all(
                    _evaluate(values[row], condition)
                    for values, condition in columns
                ):
                    kept.append((key, batch_index, row))
            unique = kept
        unique.sort(key=lambda entry: entry[0])
        return merge_rows(batches, unique)

    @staticmethod
    def _residual_ok(wrapper, record, conditions):
        for label, op, value in conditions:
            condition = NativeCondition(label, op, value)
            field_value = record.get(wrapper.source_field(label))
            if not _evaluate(field_value, condition):
                return False
        return True

    # -- reconciliation ------------------------------------------------------------

    def _reconcile_records(self, plan, anchor_wrapper, anchor_records,
                           stats, report, allowed_by_step):
        """Record-at-a-time link matching with include/exclude break
        semantics (the pre-columnar reconcile loop)."""
        surviving = []
        matched_links = []
        for record in anchor_records:
            links_for_record = {}
            keep = True
            for step in plan.link_steps:
                if id(step) in self._degraded_steps:
                    # Degraded source: its constraint cannot be
                    # evaluated, so it is skipped — the
                    # YeastMed-style partial answer is computed from
                    # the sources that responded, and the report
                    # marks the gap.
                    links_for_record[step.source_name] = []
                    continue
                matched = self._match_link(
                    step, anchor_wrapper, record, stats, report,
                    allowed_by_step.get(id(step)),
                )
                links_for_record[step.source_name] = matched
                if step.link.mode == "include" and not matched:
                    keep = False
                    break
                if step.link.mode == "exclude" and matched:
                    keep = False
                    break
            if keep:
                surviving.append(record)
                matched_links.append(links_for_record)
        return surviving, matched_links

    def _reconcile_columnar(self, plan, anchor_wrapper, batch, stats,
                            report, allowed_by_step):
        """Vectorized reconcile: label resolution and field extraction
        hoisted out of the row loop into whole-column gathers.

        The per-row matching (with the record path's exact
        include/exclude break semantics) still runs row-wise — the
        reconciler's validations are inherently per anchor — but each
        row touches pre-gathered columns instead of building and
        indexing dicts.  Survivors materialize as record dicts only
        once, at the end.
        """
        gathered = self._gather_link_columns(
            plan, anchor_wrapper, batch
        )
        anchor_ids = gathered["anchor_ids"]
        step_columns = gathered["steps"]
        surviving_rows = []
        matched_links = []
        for row in range(len(batch)):
            anchor_id = anchor_ids[row]
            links_for_record = {}
            keep = True
            for step in plan.link_steps:
                if id(step) in self._degraded_steps:
                    links_for_record[step.source_name] = []
                    continue
                columns = step_columns[id(step)]
                raw = (
                    None
                    if columns["via"] is None
                    else columns["via"][row]
                )
                if columns["symbols"] is not None:
                    values, present = columns["symbols"]
                    symbol = values[row] if present[row] else ""
                else:
                    symbol = ""
                aliases = (
                    []
                    if columns["aliases"] is None
                    else columns["aliases"][row] or []
                )
                matched = self._match_link_values(
                    step, anchor_id, raw, symbol, aliases, report,
                    allowed_by_step.get(id(step)),
                )
                links_for_record[step.source_name] = matched
                if step.link.mode == "include" and not matched:
                    keep = False
                    break
                if step.link.mode == "exclude" and matched:
                    keep = False
                    break
            if keep:
                surviving_rows.append(row)
                matched_links.append(links_for_record)
        # Borrow, don't copy: everything downstream (translate,
        # answer construction, artifact pickling) only reads these.
        surviving = batch.take(surviving_rows).borrow_records()
        return surviving, matched_links

    def _gather_link_columns(self, plan, anchor_wrapper, batch):
        """Per-execution column gather for the reconcile loop: the
        anchor-id column plus, per link step, its via column and (for
        symbol joins) the shared symbol/alias columns."""
        key_field = anchor_wrapper.source_field(
            self.mapping_module.to_local_label(
                anchor_wrapper.name, "GeneID"
            )
        )
        steps = {}
        symbol_pair = None
        alias_values = None
        symbol_gathered = False
        for step in plan.link_steps:
            if id(step) in self._degraded_steps:
                steps[id(step)] = {
                    "via": None, "symbols": None, "aliases": None
                }
                continue
            via = None
            if not step.link.reverse_join:
                via_field = anchor_wrapper.source_field(
                    self.mapping_module.to_local_label(
                        anchor_wrapper.name, step.link.via
                    )
                )
                via = batch.values(via_field)
            symbols = None
            aliases = None
            if (
                step.link.symbol_join
                and step.source_name in self._symbol_indexes
            ):
                if not symbol_gathered:
                    symbol_field = anchor_wrapper.source_field(
                        self.mapping_module.to_local_label(
                            anchor_wrapper.name, "GeneSymbol"
                        )
                    )
                    symbol_pair = batch.column_pair(symbol_field)
                    alias_local = self.mapping_module.correspondences(
                        anchor_wrapper.name
                    ).to_local("AliasSymbol")
                    if alias_local is not None:
                        alias_values = batch.values(
                            anchor_wrapper.source_field(alias_local)
                        )
                    symbol_gathered = True
                symbols = symbol_pair
                aliases = alias_values
            steps[id(step)] = {
                "via": via, "symbols": symbols, "aliases": aliases
            }
        return {"anchor_ids": batch.values(key_field), "steps": steps}

    def _step_fingerprints(self, plan, degraded=None):
        """One stable tuple per link stage — each stage's own
        :meth:`~repro.mediator.plan.FetchStage.fingerprint`, the
        physical plan's content address.

        ``degraded`` (the run's degraded-step set) appends each step's
        degradation flag — the reconcile key includes it because
        degradation changes the stage's semantics; the answer key
        omits it and instead only ever *stores* clean runs.
        """
        steps = []
        for position, step in enumerate(plan.link_steps):
            wrapper = self.wrappers[step.source_name]
            steps.append(
                step.fingerprint(
                    position,
                    wrapper.version,
                    degraded=(
                        None
                        if degraded is None
                        else id(step) in degraded
                    ),
                )
            )
        return steps

    def _reconcile_artifact_key(self, plan, anchor_wrapper):
        """The reconcile stage's content address, or ``None`` when the
        artifact store is off.

        Every input the stage consumes is derived from (source,
        version, plan conditions): the anchor set, each step's
        allowed-id set or reverse index, and the symbol indexes.  The
        reconciler's policy and the run's degraded steps (which change
        semantics) are part of the key.
        """
        if self.artifacts is None:
            return None
        return stage_key(
            "reconcile",
            source=plan.anchor.source_name,
            version=anchor_wrapper.version,
            conditions=tuple(plan.anchor.pushed)
            + tuple(plan.anchor.residual),
            upstream=self._step_fingerprints(
                plan, degraded=self._degraded_steps
            ),
            extra=(
                plan.anchor.semijoin,
                repr(self.reconciler.policy),
                bool(self.columnar),
            ),
        )

    def _answer_artifact_key(self, plan, query, anchor_wrapper,
                             enrich_links):
        """The answer-construction stage's content address, or
        ``None`` when the artifact store is off.

        The integrated answer is fully determined by the plan (which
        embeds every pushed/residual condition), the participating
        sources' versions, the projection, link enrichment, and the
        reconciler's policy — so the key is computable *before any
        fetch*, and a hit answers the whole query from the store.
        Degradation state is deliberately absent: only clean runs are
        stored, so a hit always serves a complete answer for these
        exact source versions.
        """
        if self.artifacts is None:
            return None
        return stage_key(
            "answer",
            source=plan.anchor.source_name,
            version=anchor_wrapper.version,
            conditions=tuple(plan.anchor.pushed)
            + tuple(plan.anchor.residual),
            upstream=self._step_fingerprints(plan),
            extra=(
                plan.anchor.semijoin,
                repr(self.reconciler.policy),
                bool(self.columnar),
                bool(enrich_links),
                tuple(query.select),
            ),
        )

    def _plan_sources(self, plan):
        """Every source participating in a plan (artifact tags)."""
        names = {plan.anchor.source_name}
        names.update(step.source_name for step in plan.link_steps)
        return tuple(sorted(names))

    # -- stage artifacts -----------------------------------------------------------

    def _artifact_get(self, key, stats):
        """Probe the artifact store (when on), folding hit/miss/byte
        accounting into ``stats``."""
        if self.artifacts is None:
            return None
        found = self.artifacts.get(key)
        if found is None:
            stats.artifact_misses += 1
            return None
        payload, size = found
        stats.artifact_hits += 1
        stats.artifact_bytes += size
        return payload

    def _artifact_put(self, key, payload, stats, sources=(), live=False):
        """Store one finished stage's payload (when the store is on).

        ``live`` passes through to the store: the payload object is
        kept and later shared by reference (answer stage only).
        """
        if self.artifacts is None:
            return
        stats.artifact_bytes += self.artifacts.put(
            key, payload, sources=sources, live=live
        )

    # -- link matching -------------------------------------------------------------

    def _match_link(self, step, anchor_wrapper, record, stats, report,
                    allowed):
        """The linked ids of one anchor record that satisfy one link step.

        ``allowed`` is the precomputed id set of the step's conditioned
        fetch (``None`` for pruned steps: any valid id counts).
        """
        link = step.link
        anchor_id = self._anchor_id(anchor_wrapper, record)
        raw = None
        if not link.reverse_join:
            via_field = anchor_wrapper.source_field(
                self.mapping_module.to_local_label(
                    anchor_wrapper.name, link.via
                )
            )
            raw = record.get(via_field)
        symbol = ""
        aliases = []
        if link.symbol_join and step.source_name in self._symbol_indexes:
            symbol_field = anchor_wrapper.source_field(
                self.mapping_module.to_local_label(
                    anchor_wrapper.name, "GeneSymbol"
                )
            )
            symbol = record.get(symbol_field, "")
            alias_local = self.mapping_module.correspondences(
                anchor_wrapper.name
            ).to_local("AliasSymbol")
            if alias_local is not None:
                aliases = record.get(
                    anchor_wrapper.source_field(alias_local)
                ) or []
        return self._match_link_values(
            step, anchor_id, raw, symbol, aliases, report, allowed
        )

    def _match_link_values(self, step, anchor_id, raw, symbol, aliases,
                           report, allowed):
        """The matching core shared by the record and columnar paths:
        consumes pre-extracted field values, so the columnar reconcile
        feeds it straight from gathered columns."""
        link = step.link
        link_wrapper = self.wrappers[step.source_name]

        if link.reverse_join:
            reverse = self._reverse_indexes[id(step)]
            matched = sorted(reverse.get(anchor_id, ()), key=str)
        else:
            raw_ids = raw or []
            if not isinstance(raw_ids, list):
                raw_ids = [raw_ids]
            valid = self._validated_ids(
                anchor_id, raw_ids, link_wrapper, report
            )
            matched = [
                link_id
                for link_id in valid
                if allowed is None or link_id in allowed
            ]

        if link.symbol_join and step.source_name in self._symbol_indexes:
            via_symbols = self.reconciler.disease_ids_via_symbols(
                anchor_id,
                symbol,
                aliases,
                link_wrapper,
                report,
                index=self._symbol_indexes.get(step.source_name),
            )
            for mim in sorted(via_symbols):
                if allowed is not None and mim not in allowed:
                    continue
                if mim not in matched:
                    matched.append(mim)
        return matched

    def _allowed_ids(self, step, link_wrapper, records):
        """Key ids of linked-source records satisfying the step's
        conditions (the un-pruned path)."""
        key_local = self.mapping_module.to_local_label(
            step.source_name, step.link.via
        )
        key_field = link_wrapper.source_field(key_local)
        if isinstance(records, RecordBatch):
            allowed = set(records.values(key_field))
        else:
            allowed = {record[key_field] for record in records}
        for label, _op, value in step.closure:
            if label != key_local:
                raise IntegrationError(
                    f"'under' applies to the link key {key_local!r}, "
                    f"not {label!r}"
                )
            within = {value} | set(link_wrapper.descendants(value))
            allowed &= within
        return allowed

    def _validated_ids(self, anchor_id, raw_ids, link_wrapper, report):
        """Reconciler validation, dispatched on wrapper capabilities."""
        if hasattr(link_wrapper, "is_obsolete"):
            return self.reconciler.valid_annotation_ids(
                anchor_id, raw_ids, link_wrapper, report
            )
        if hasattr(link_wrapper, "entries_for_symbol"):
            return self.reconciler.valid_disease_ids(
                anchor_id, raw_ids, link_wrapper, report
            )
        return list(raw_ids)

    def _anchor_id(self, anchor_wrapper, record):
        key_local = self.mapping_module.to_local_label(
            anchor_wrapper.name, "GeneID"
        )
        return record.get(anchor_wrapper.source_field(key_local))

    # -- combination into the integrated OEM view --------------------------------------

    def _combine(self, plan, query, anchor_wrapper, records, matched_links,
                 enrich_links, stats, recorder=NULL_RECORDER):
        graph = OEMGraph("integrated-view")
        root = graph.new_complex()
        graph.set_root("IntegratedView", root)

        enrichment = {}
        if enrich_links:
            enrichment = self._enrichment_indexes(
                plan, matched_links, stats, recorder
            )

        genes = []
        for record, links_for_record in zip(records, matched_links):
            gene_dict = self.mapping_module.translate_record(
                anchor_wrapper.name, record, anchor_wrapper
            )
            gene_dict["_links"] = links_for_record
            if query.select:
                gene_dict = {
                    key: value
                    for key, value in gene_dict.items()
                    if key in query.select or key in ("GeneID", "_links")
                }
            genes.append(gene_dict)
            gene_object = self._build_gene(
                graph, gene_dict, record, anchor_wrapper,
                links_for_record, enrichment, plan,
            )
            graph.add_edge(root, "Gene", gene_object)
        return genes, graph, root

    def _enrichment_indexes(self, plan, matched_links, stats,
                            recorder=NULL_RECORDER):
        """Per link source: id -> translated record, for view detail.

        Only the ids the surviving anchors actually matched are needed,
        so the fetch is a single batched ``in`` over that set (full
        fetch for wrappers without ``in``), and the translated index is
        cached on the mediator keyed ``(source, wrapper.version)`` —
        a repeat query over unchanged sources never re-fetches or
        re-translates, while any source mutation bumps the version and
        misses the cache.  The per-source fetches are independent, so
        they go out as one concurrent batch; a source failing here
        degrades to id-only link children instead of killing the query
        (under a degrading policy).
        """
        with recorder.span(
            "enrichment", attributes={"sources": len(plan.link_steps)}
        ) as span:
            cache_before = stats.enrichment_cache_hits
            batched_before = stats.batched_fetches
            concurrent_before = stats.concurrent_batches
            indexes = self._enrichment_fetch(
                plan, matched_links, stats, recorder
            )
            _delta_counter(
                span, "enrichment_cache_hits",
                stats.enrichment_cache_hits - cache_before,
            )
            _delta_counter(
                span, "batched_fetches",
                stats.batched_fetches - batched_before,
            )
            _delta_counter(
                span, "concurrent_batches",
                stats.concurrent_batches - concurrent_before,
            )
        return indexes

    def _enrichment_fetch(self, plan, matched_links, stats, recorder):
        """The enrichment body, running inside the ``enrichment``
        span."""
        indexes = {}
        pending = []
        for step in plan.link_steps:
            if id(step) in self._degraded_steps:
                indexes.setdefault(step.source_name, {})
                continue
            wrapper = self.wrappers[step.source_name]
            key_local = self.mapping_module.to_local_label(
                step.source_name, step.link.via
            )
            key_field = wrapper.source_field(key_local)
            needed = set()
            for links_for_record in matched_links:
                needed.update(links_for_record.get(step.source_name, ()))
            cache_key = ("enrichment", step.source_name, wrapper.version)
            cached = self._cache_entry(cache_key)
            if cached is None:
                cached = {"index": {}, "known": set(), "complete": False}
                self._cache_store(cache_key, cached)
            missing = (
                set()
                if cached["complete"]
                else {
                    link_id
                    for link_id in needed
                    if link_id not in cached["known"]
                }
            )
            if not missing:
                stats.enrichment_cache_hits += 1
                indexes[step.source_name] = cached["index"]
                continue
            ordered = tuple(sorted(missing, key=str))
            batched = self.batch_fetch and wrapper.supports(key_local, "in")
            artifact_key = None
            if self.artifacts is not None:
                artifact_key = stage_key(
                    "enrichment",
                    source=step.source_name,
                    version=wrapper.version,
                    conditions=(
                        ((key_local, "in", ordered),) if batched else ()
                    ),
                    extra=(ordered, bool(batched)),
                )
                payload = self._artifact_get(artifact_key, stats)
                if payload is not None:
                    cached["index"].update(payload["index"])
                    if payload["complete"]:
                        cached["complete"] = True
                    cached["known"].update(missing)
                    cached["known"].update(cached["index"])
                    indexes[step.source_name] = cached["index"]
                    continue
            request = self._fetch_request(
                ((key_local, "in", ordered),) if batched else (),
                purpose="enrichment" if batched else "enrichment-full",
                columnar=False,
            )
            pending.append(
                (step, wrapper, cached, missing, key_field, request,
                 batched, artifact_key)
            )
            indexes[step.source_name] = cached["index"]
        if not pending:
            return indexes
        replies = self._sched_fetch_all(
            [
                (wrapper, request)
                for _step, wrapper, _cached, _missing, _key, request, _b,
                _artifact_key in pending
            ],
            stats,
            recorder=recorder,
        )
        if len(pending) > 1 and self.policy.max_workers > 1:
            stats.concurrent_batches += 1
        for (step, wrapper, cached, missing, key_field, _request,
             batched, artifact_key), reply in zip(pending, replies):
            if not reply.ok:
                # Enrichment detail is decoration, not correctness: a
                # degraded source leaves its link children id-only.
                self._degrade_or_raise(reply, stats)
                continue
            if batched:
                stats.batched_fetches += 1
            else:
                cached["complete"] = True
            added = {}
            for record in reply.records:
                translated = self.mapping_module.translate_record(
                    step.source_name, record, wrapper
                )
                added[record[key_field]] = (translated, record)
            cached["index"].update(added)
            # Ids probed but absent from the source are remembered
            # too, so dangling references never re-fetch.
            cached["known"].update(missing)
            cached["known"].update(cached["index"])
            if artifact_key is not None:
                self._artifact_put(
                    artifact_key,
                    {"index": added, "complete": not batched},
                    stats,
                    sources=(step.source_name,),
                )
        return indexes

    def _build_gene(self, graph, gene_dict, record, anchor_wrapper,
                    links_for_record, enrichment, plan):
        gene = graph.new_complex()
        for key, value in gene_dict.items():
            if key == "_links" or value in (None, "", []):
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                graph.attach_atomic(gene, key, item)
        # Linked detail objects (Annotation / Disease / Citation).
        for step in plan.link_steps:
            source_index = enrichment.get(step.source_name, {})
            child_label = _LINK_CHILD_LABELS.get(
                step.source_name, step.source_name
            )
            for link_id in links_for_record.get(step.source_name, ()):
                child = graph.attach_complex(gene, child_label)
                graph.attach_atomic(child, step.link.via, link_id)
                entry = source_index.get(link_id)
                if entry is not None:
                    translated, _raw = entry
                    for key in ("Title", "Aspect", "Inheritance",
                                "Journal", "Year", "SequenceLength"):
                        if translated.get(key) not in (None, "", []):
                            graph.attach_atomic(
                                child, key, translated[key]
                            )
        # Web links for interactive navigation.  Built from the
        # *reconciled* answer (self + matched link ids), never from the
        # raw record — raw links may dangle, and the integrated view
        # must only offer links that resolve.
        from repro.navigation.links import url_for

        links_object = graph.attach_complex(gene, "Links")
        anchor_id = self._anchor_id(anchor_wrapper, record)
        graph.attach_atomic(
            links_object,
            "Self",
            url_for(anchor_wrapper.name, anchor_id),
            OEMType.URL,
        )
        for step in plan.link_steps:
            for link_id in links_for_record.get(step.source_name, ()):
                graph.attach_atomic(
                    links_object,
                    step.source_name,
                    url_for(step.source_name, link_id),
                    OEMType.URL,
                )
        return gene


_LINK_CHILD_LABELS = {
    "GO": "Annotation",
    "OMIM": "Disease",
    "PubMed": "Citation",
    "SwissProt": "Protein",
}
