"""Construction of the ANNODA-GML global model (Figure 4).

ANNODA-GML is an OEM graph describing the federation itself: one
``Source`` object per participating annotation database, each carrying
its ``SourceID``, ``Name``, ``Content`` summary and ``Structure``
(schema elements with their global correspondences), plus web ``Links``
— exactly the shape the section 4.1 example query navigates
(``select X from ANNODA-GML.Source X where X.Name = "LocusLink"``).

GML stays *virtual* with respect to data: ``Content`` summarizes the
member database (entry label and live count) rather than materializing
records, in keeping with the federated approach — *"ANNODA-GML does
not require a number of participating data sources to be physically
integrated into a single database"* (section 3.2.3).
"""

from repro.oem.graph import OEMGraph
from repro.oem.types import OEMType

ROOT_NAME = "ANNODA-GML"

_HOMEPAGES = {
    "LocusLink": "http://www.ncbi.nlm.nih.gov/LocusLink/",
    "GO": "http://www.geneontology.org/",
    "OMIM": "http://www.ncbi.nlm.nih.gov/omim/",
    "PubMed": "http://www.ncbi.nlm.nih.gov/pubmed/",
}


class GmlBuilder:
    """Build the GML OEM graph from wrappers + the mapping module."""

    def __init__(self, mapping_module, version="2005.1"):
        self.mapping_module = mapping_module
        self.version = version

    def build(self, wrappers):
        """Returns ``(graph, root)`` with the root bound as ANNODA-GML."""
        graph = OEMGraph("annoda-gml")
        root = graph.new_complex()
        graph.set_root(ROOT_NAME, root)
        version = graph.new_atomic(self.version, OEMType.STRING)
        graph.add_edge(root, "Version", version)
        for index, wrapper in enumerate(wrappers):
            source = self._build_source(graph, wrapper, index)
            graph.add_edge(root, "Source", source)
        return graph, root

    def _build_source(self, graph, wrapper, index):
        source = graph.new_complex()
        # SourceIDs 103, 203, 303, ... mirror the paper's section 4.1
        # listing, where LocusLink's answer object shows SourceID &103.
        source_id = graph.new_atomic(100 * (index + 1) + 3, OEMType.INTEGER)
        graph.add_edge(source, "SourceID", source_id)
        name = graph.new_atomic(wrapper.name, OEMType.STRING)
        graph.add_edge(source, "Name", name)
        description = graph.new_atomic(
            self.mapping_module.description(wrapper.name)
            or wrapper.describe(),
            OEMType.STRING,
        )
        graph.add_edge(source, "Description", description)
        graph.add_edge(source, "Content", self._build_content(graph, wrapper))
        graph.add_edge(
            source, "Structure", self._build_structure(graph, wrapper)
        )
        graph.add_edge(source, "Links", self._build_links(graph, wrapper))
        return source

    @staticmethod
    def _build_content(graph, wrapper):
        content = graph.new_complex()
        entry_label = graph.new_atomic(wrapper.entry_label, OEMType.STRING)
        graph.add_edge(content, "EntryLabel", entry_label)
        entry_count = graph.new_atomic(wrapper.count(), OEMType.INTEGER)
        graph.add_edge(content, "EntryCount", entry_count)
        return content

    def _build_structure(self, graph, wrapper):
        structure = graph.new_complex()
        model = graph.new_atomic("ANNODA-OML", OEMType.STRING)
        graph.add_edge(structure, "Model", model)
        correspondences = None
        if wrapper.name in self.mapping_module.sources():
            correspondences = self.mapping_module.correspondences(
                wrapper.name
            )
        for schema_element in wrapper.schema_elements():
            element = graph.new_complex()
            graph.add_edge(structure, "Element", element)
            graph.add_edge(
                element,
                "Name",
                graph.new_atomic(schema_element.name, OEMType.STRING),
            )
            graph.add_edge(
                element,
                "Type",
                graph.new_atomic(
                    schema_element.oem_type.value, OEMType.STRING
                ),
            )
            graph.add_edge(
                element,
                "Multivalued",
                graph.new_atomic(
                    schema_element.multivalued, OEMType.BOOLEAN
                ),
            )
            if correspondences is not None:
                global_name = correspondences.to_global(schema_element.name)
                if global_name is not None:
                    graph.add_edge(
                        element,
                        "MapsTo",
                        graph.new_atomic(global_name, OEMType.STRING),
                    )
        return structure

    @staticmethod
    def _build_links(graph, wrapper):
        links = graph.new_complex()
        homepage = _HOMEPAGES.get(
            wrapper.name, f"http://annoda.example/source/{wrapper.name}"
        )
        graph.add_edge(
            links, "Homepage", graph.new_atomic(homepage, OEMType.URL)
        )
        return links
