"""The ANNODA mediator: global model, decomposition, optimization,
execution and reconciliation.

Figure 1 of the paper puts the *Mediator* between the application
interface and the wrappers.  Section 3.1: *"Queries posed against the
ANNODA global schema will be translated into individual queries
against the relevant annotation databases, and their results combined
before being returned to the user."*

Pipeline::

    GlobalQuery --decompose--> SubQueries --build--> LogicalPlan
        --rule optimizer + lowering--> PhysicalPlan
        --execute (via wrappers + reconciler)--> IntegratedResult (OEM)
"""

from repro.mediator.artifacts import ArtifactStore, stage_key
from repro.mediator.decompose import (
    GlobalQuery,
    LinkConstraint,
    QueryDecomposer,
    SubQuery,
)
from repro.mediator.executor import (
    ExecutionReport,
    ExecutionStats,
    Executor,
    IntegratedResult,
    SourceReport,
)
from repro.mediator.fetch import (
    FederatedFetcher,
    FederationPolicy,
    FetchReply,
    FetchRequest,
    FlakyWrapper,
)
from repro.mediator.global_schema import GlobalSchema
from repro.mediator.gml import GmlBuilder
from repro.mediator.mapping import MappingModule, TransformRegistry
from repro.mediator.mediator import Mediator
from repro.mediator.optimizer import Optimizer, OptimizerOptions
from repro.mediator.plan import (
    FetchStage,
    LogicalPlan,
    PhysicalPlan,
    RuleOptimizer,
    RuleReport,
)
from repro.mediator.reconcile import (
    ReconciliationPolicy,
    ReconciliationReport,
    Reconciler,
)
from repro.mediator.replicas import ReplicaSet
from repro.mediator.scheduler import StagePlacement, StageScheduler

__all__ = [
    "ArtifactStore",
    "ExecutionPlan",
    "ExecutionReport",
    "ExecutionStats",
    "Executor",
    "FederatedFetcher",
    "FederationPolicy",
    "FetchReply",
    "FetchRequest",
    "FetchStage",
    "FlakyWrapper",
    "GlobalQuery",
    "GlobalSchema",
    "GmlBuilder",
    "IntegratedResult",
    "LinkConstraint",
    "LogicalPlan",
    "MappingModule",
    "Mediator",
    "Optimizer",
    "OptimizerOptions",
    "PhysicalPlan",
    "QueryDecomposer",
    "ReconciliationPolicy",
    "ReconciliationReport",
    "Reconciler",
    "ReplicaSet",
    "RuleOptimizer",
    "RuleReport",
    "SourceReport",
    "StagePlacement",
    "StageScheduler",
    "SubQuery",
    "TransformRegistry",
    "stage_key",
]


def __getattr__(name):
    # Deprecated alias, kept one release: Mediator.plan() now returns
    # a PhysicalPlan.  Resolved lazily so importing the package never
    # warns — only actually touching the old name does.
    if name == "ExecutionPlan":
        import warnings

        warnings.warn(
            "repro.mediator.ExecutionPlan is deprecated; "
            "Mediator.plan() returns a repro.mediator.PhysicalPlan",
            DeprecationWarning,
            stacklevel=2,
        )
        return PhysicalPlan
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
