"""Reconciliation of semantic conflicts and contradictions.

Requirement 5 of section 3.1: *"the system should resolve the semantic
conflicts and contradictions caused due to the unstructured of
annotation data."*  Table 1 claims this as ANNODA's differentiator
over K2/Kleisli and DiscoveryLink (*"reconciliation of results"*).

Concretely, integrating LocusLink/GO/OMIM surfaces four conflict
classes (all injectable by the corpus builder):

- **case-variant symbols** — OMIM lists ``fosb`` for official ``FOSB``;
- **alias symbols** — OMIM lists an alternate symbol;
- **stale annotations** — a locus annotated with an obsolete GO term;
- **dangling references** — a locus pointing at a nonexistent MIM.

The :class:`Reconciler` applies a :class:`ReconciliationPolicy` while
the executor joins sources, and files everything it found or fixed in
a :class:`ReconciliationReport`.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ReconciliationPolicy:
    """Which reconciliation behaviours are active.

    All on reproduces ANNODA; all off reproduces the naive middleware
    join the comparative benchmark measures against.
    """

    case_insensitive_symbols: bool = True
    use_alias_symbols: bool = True
    drop_obsolete_annotations: bool = True
    drop_dangling_references: bool = True

    @classmethod
    def naive(cls):
        """No reconciliation at all (the K2/Kleisli row of Table 1)."""
        return cls(
            case_insensitive_symbols=False,
            use_alias_symbols=False,
            drop_obsolete_annotations=False,
            drop_dangling_references=False,
        )


@dataclass(frozen=True)
class Issue:
    """One conflict the reconciler observed (and possibly repaired)."""

    kind: str
    anchor_id: object
    detail: str
    repaired: bool


@dataclass
class ReconciliationReport:
    """Everything reconciliation found during one query execution."""

    issues: list = field(default_factory=list)

    def record(self, kind, anchor_id, detail, repaired):
        self.issues.append(
            Issue(kind=kind, anchor_id=anchor_id, detail=detail,
                  repaired=repaired)
        )

    def count(self, kind=None):
        if kind is None:
            return len(self.issues)
        return sum(1 for issue in self.issues if issue.kind == kind)

    def repaired_count(self):
        return sum(1 for issue in self.issues if issue.repaired)

    def kinds(self):
        return sorted({issue.kind for issue in self.issues})

    def render(self):
        if not self.issues:
            return "reconciliation: no conflicts observed"
        lines = [f"reconciliation: {len(self.issues)} conflicts observed"]
        for kind in self.kinds():
            lines.append(f"  {kind}: {self.count(kind)}")
        return "\n".join(lines)


class SymbolIndex:
    """Per-query index of a symbol-joined source's symbol vocabulary.

    Maps exact and case-folded symbols to the entry ids listing them,
    so the reconciler's per-anchor work is O(aliases), not a scan of
    the whole vocabulary.
    """

    def __init__(self):
        self._exact = {}
        self._lowered = {}

    @classmethod
    def from_wrapper(cls, wrapper, key_label="MimNumber",
                     symbol_label="GeneSymbol", budget=None):
        """Build from any wrapper exposing a key and a symbol label.

        Defaults fit OMIM; the executor passes the mapped labels for
        other symbol-joined sources (e.g. the protein source's
        ``Accession``/``GeneSymbol``).  Single-valued symbol fields are
        normalized to one-element lists.  ``budget`` is the owning
        request's :class:`~repro.util.cancel.RequestBudget`: the index
        build is a full-vocabulary fetch, exactly the kind of work a
        deadline-expired request must not start.
        """
        if budget is not None and budget.expired:
            raise TimeoutError(
                f"symbol index build abandoned: {budget.describe()}"
            )
        index = cls()
        symbol_field = wrapper.source_field(symbol_label)
        key_field = wrapper.source_field(key_label)
        from repro.mediator.fetch import FetchRequest

        request = FetchRequest(purpose="symbol-index", budget=budget)
        for record in wrapper.fetch(request):
            entry_id = record[key_field]
            value = record.get(symbol_field)
            symbols = value if isinstance(value, list) else [value]
            for symbol in symbols:
                if symbol:
                    index.add(symbol, entry_id)
        return index

    def add(self, symbol, entry_id):
        self._exact.setdefault(symbol, set()).add(entry_id)
        self._lowered.setdefault(symbol.lower(), {}).setdefault(
            symbol, set()
        ).add(entry_id)

    def exact(self, symbol):
        """Entry ids listing exactly ``symbol``."""
        return set(self._exact.get(symbol, ()))

    def folded(self, symbol):
        """(listed_symbol, entry ids) pairs matching case-insensitively."""
        return [
            (listed, set(ids))
            for listed, ids in self._lowered.get(symbol.lower(), {}).items()
        ]


class Reconciler:
    """Conflict-resolving joins between the anchor and linked sources."""

    def __init__(self, policy=None):
        self.policy = policy or ReconciliationPolicy()

    # -- annotation (GO) links ---------------------------------------------------

    def valid_annotation_ids(self, anchor_id, go_ids, go_wrapper, report):
        """Filter a record's GO ids against the live ontology.

        Dangling ids are dropped (if the policy says so) and reported;
        obsolete terms likewise.  With a naive policy everything passes
        and nothing is reported repaired.
        """
        valid = []
        for go_id in go_ids:
            if not go_wrapper.exists(go_id):
                repaired = self.policy.drop_dangling_references
                report.record(
                    "dangling_annotation",
                    anchor_id,
                    f"unknown GO accession {go_id}",
                    repaired,
                )
                if repaired:
                    continue
            elif go_wrapper.is_obsolete(go_id):
                repaired = self.policy.drop_obsolete_annotations
                report.record(
                    "obsolete_annotation",
                    anchor_id,
                    f"annotation to obsolete term {go_id}",
                    repaired,
                )
                if repaired:
                    continue
            valid.append(go_id)
        return valid

    # -- disease (OMIM) links ---------------------------------------------------------

    def valid_disease_ids(self, anchor_id, mim_ids, omim_wrapper, report):
        """Filter a record's MIM references against the live source."""
        valid = []
        for mim in mim_ids:
            if not omim_wrapper.exists(mim):
                repaired = self.policy.drop_dangling_references
                report.record(
                    "dangling_disease",
                    anchor_id,
                    f"unknown MIM number {mim}",
                    repaired,
                )
                if repaired:
                    continue
            valid.append(mim)
        return valid

    def symbol_match(self, official_symbol, aliases, listed_symbol):
        """Does an OMIM-listed symbol denote this gene under the policy?

        Returns ``(matched, via)`` where ``via`` explains how:
        ``exact``, ``case`` or ``alias``.
        """
        if listed_symbol == official_symbol:
            return True, "exact"
        if (
            self.policy.case_insensitive_symbols
            and listed_symbol.lower() == official_symbol.lower()
        ):
            return True, "case"
        if self.policy.use_alias_symbols:
            candidates = {alias for alias in aliases}
            if listed_symbol in candidates:
                return True, "alias"
            if self.policy.case_insensitive_symbols and any(
                listed_symbol.lower() == alias.lower()
                for alias in candidates
            ):
                return True, "alias"
        return False, "none"

    def disease_ids_via_symbols(self, anchor_id, official_symbol, aliases,
                                omim_wrapper, report, index=None):
        """MIM numbers OMIM associates with this gene through symbols.

        Exact matches come straight from the source index; reconciled
        matches (case/alias variants) are reported as repaired
        conflicts.  ``index`` is an optional precomputed
        :class:`SymbolIndex` (the executor builds one per query); when
        omitted one is built on the fly.
        """
        if index is None:
            index = SymbolIndex.from_wrapper(omim_wrapper)
        found = index.exact(official_symbol)

        def adopt(listed, ids, via):
            new_ids = ids - found
            for entry_id in sorted(new_ids):
                report.record(
                    f"symbol_{via}",
                    anchor_id,
                    (
                        f"OMIM {entry_id} lists {listed!r} for "
                        f"official symbol {official_symbol!r}"
                    ),
                    True,
                )
            found.update(new_ids)

        if self.policy.case_insensitive_symbols:
            for listed, ids in index.folded(official_symbol):
                if listed != official_symbol:
                    adopt(listed, ids, "case")
        if self.policy.use_alias_symbols:
            for alias in aliases:
                exact_ids = index.exact(alias)
                if exact_ids:
                    adopt(alias, exact_ids, "alias")
                if self.policy.case_insensitive_symbols:
                    for listed, ids in index.folded(alias):
                        if listed != alias:
                            adopt(listed, ids, "alias")
        return found

    # -- attribute merging ----------------------------------------------------------

    @staticmethod
    def merge_values(values_by_source, trusted_order):
        """Resolve one attribute reported differently by several sources.

        Strategy: the first source in ``trusted_order`` that reports a
        value wins; disagreement among the rest is surfaced by the
        caller.  Returns ``(winner_value, winner_source, conflicting)``.
        """
        ordered = [
            source for source in trusted_order if source in values_by_source
        ] + [
            source
            for source in sorted(values_by_source)
            if source not in trusted_order
        ]
        if not ordered:
            return None, None, []
        winner_source = ordered[0]
        winner = values_by_source[winner_source]
        conflicting = [
            (source, values_by_source[source])
            for source in ordered[1:]
            if values_by_source[source] != winner
        ]
        return winner, winner_source, conflicting
