"""Replica sets: N wrappers of one source behind one registration.

Federated biomedical engines route sub-queries across redundant
endpoints so one dead node never costs the whole source.  A
:class:`ReplicaSet` brings that to the wrapper registry: it *is* a
wrapper (same duck-typed surface — ``name``, ``version``, ``fetch``,
``supports``, schema export, ontology navigation all delegate), but
``fetch`` rotates over its replicas, failing over to a sibling
*before* the :class:`~repro.mediator.fetch.FederationPolicy` ever
sees a failure — degradation is the last resort, after every replica
of the source refused.

Placement: the preferred replica of a shard-pinned request is
``shard_index % replica_count``, so the stage scheduler's fan-out
spreads a shard grid deterministically across the replicas; whole
fetches start at the primary.  Every replica serves the same logical
extent (typically its own :class:`~repro.sources.shard.ShardedSource`
facade over one consistent base store), so which replica answers never
changes the answer — the failover suite and the shard equivalence
property pin that down.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.util.locks import new_lock


class ReplicaSet:
    """N interchangeable wrappers of one source, with failover.

    Counters are lock-protected: the federated fetcher calls
    :meth:`fetch` from several pool threads at once.
    """

    def __init__(self, replicas: Iterable[Any]) -> None:
        replicas = list(replicas)
        if not replicas:
            raise ValueError("a ReplicaSet needs at least one replica")
        names = {replica.name for replica in replicas}
        if len(names) != 1:
            raise ValueError(
                f"replicas must serve one source, got {sorted(names)}"
            )
        self._replicas = replicas
        self._mutex = new_lock("ReplicaSet._mutex")
        self._failovers = 0

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        replicas = self.__dict__.get("_replicas")
        if not replicas:
            raise AttributeError(name)
        return getattr(replicas[0], name)

    # -- identity -------------------------------------------------------------

    @property
    def primary(self) -> Any:
        return self._replicas[0]

    @property
    def replicas(self) -> Tuple[Any, ...]:
        return tuple(self._replicas)

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    @property
    def name(self) -> str:
        name: str = self._replicas[0].name
        return name

    @property
    def version(self) -> int:
        version: int = self._replicas[0].version
        return version

    @property
    def source(self) -> Any:
        return self._replicas[0].source

    @property
    def shard_count(self) -> int:
        count: int = getattr(self._replicas[0], "shard_count", 1)
        return count

    def trace_attributes(self) -> Any:
        attributes = {}
        inner = getattr(self._replicas[0], "trace_attributes", None)
        if inner is not None:
            attributes.update(inner())
        attributes["replicas"] = len(self._replicas)
        return attributes

    # -- placement + failover -------------------------------------------------

    def preferred_replica(self, request: Any) -> int:
        """The replica a request is placed on first: shard-pinned
        requests spread round-robin over the grid, whole fetches start
        at the primary."""
        shard = getattr(request, "shard", None)
        start = shard[0] if shard is not None else 0
        return start % len(self._replicas)

    def fetch(self, request: Any) -> Any:
        """Fetch from the preferred replica, failing over through the
        siblings; raises only after *every* replica failed (which is
        when the federation policy's retry/degrade semantics take
        over — a dead replica alone never degrades the source)."""
        start = self.preferred_replica(request)
        count = len(self._replicas)
        last_error: BaseException = IndexError("no replicas")
        for offset in range(count):
            replica = self._replicas[(start + offset) % count]
            try:
                return replica.fetch(request)
            except Exception as exc:
                last_error = exc
                if offset + 1 < count:
                    with self._mutex:
                        self._failovers += 1
        raise last_error

    def failover_count(self) -> int:
        """Cumulative fetches this set handed to a sibling after the
        placed replica failed."""
        with self._mutex:
            return self._failovers
