"""Multi-source query optimization (paper requirement 3).

The optimizer is the pipeline's middle third, and since the plan-IR
redesign it is a thin orchestrator over :mod:`repro.mediator.plan`:

1. **build** — the decomposed subqueries become a logical tree
   (:func:`repro.mediator.plan.build_logical`);
2. **optimize** — :class:`repro.mediator.plan.RuleOptimizer` rewrites
   the tree via named rule passes (predicate pushdown, link-fetch
   pruning, selectivity ordering, semijoin anchor selection — one per
   :class:`OptimizerOptions` switch), each recording whether it fired;
3. **lower** — :class:`repro.mediator.plan.PhysicalPlanner` lowers the
   optimized tree to a :class:`~repro.mediator.plan.PhysicalPlan`, the
   executable stage DAG the :class:`~repro.mediator.executor.Executor`
   walks.

``Optimizer.plan()`` still takes subqueries and returns the plan in
one call, so callers that never need the intermediate layers keep
their old shape.
"""

from repro.mediator.plan import (
    OptimizerOptions,
    PhysicalPlanner,
    RuleOptimizer,
    RuleReport,
    build_logical,
)

__all__ = ["Optimizer", "OptimizerOptions"]

#: Deprecated alias -> (replacement name in repro.mediator.plan).
_DEPRECATED_ALIASES = {
    "ExecutionPlan": "PhysicalPlan",
    "FetchStep": "FetchStage",
}


def __getattr__(name):
    replacement = _DEPRECATED_ALIASES.get(name)
    if replacement is not None:
        import warnings

        import repro.mediator.plan as _plan

        warnings.warn(
            f"repro.mediator.optimizer.{name} is deprecated; use "
            f"repro.mediator.plan.{replacement} (the physical plan "
            "produced by Optimizer.plan())",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_plan, replacement)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


class Optimizer:
    """Plan subqueries against a registry of wrappers."""

    def __init__(self, wrappers_by_name, options=None, columnar=True):
        self.wrappers = wrappers_by_name
        self.options = options or OptimizerOptions()
        self._rules = RuleOptimizer(self.wrappers, self.options)
        self._planner = PhysicalPlanner(self.wrappers, columnar=columnar)

    def build_logical(self, subqueries, select=()):
        """The unoptimized logical tree for decomposed subqueries."""
        return build_logical(subqueries, select=select)

    def optimize_logical(self, logical):
        """``(optimized logical plan, rule report)``."""
        return self._rules.optimize(logical)

    def lower(self, logical, rules=None):
        """Lower a logical tree to its executable physical plan."""
        if rules is None:
            rules = RuleReport()
        return self._planner.lower(logical, rules=rules)

    def plan(self, subqueries, select=()):
        """Build, optimize and lower in one call."""
        logical = self.build_logical(subqueries, select=select)
        optimized, rules = self.optimize_logical(logical)
        return self.lower(optimized, rules=rules)
