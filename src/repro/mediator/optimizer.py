"""Multi-source query optimization (paper requirement 3).

The optimizer turns decomposed subqueries into an
:class:`ExecutionPlan` by making three decisions, each of which the
ablation benchmark can switch off:

1. **Selection pushdown** — every condition a wrapper can evaluate
   natively is shipped to the source; the rest stay as residual
   predicates at the mediator.  Off: everything is residual, so the
   source ships its whole extent.
2. **Link-fetch pruning** — an unconditional link constraint
   ("annotated with *some* GO function") needs no fetch from the
   linked source at all: the anchor's own link identifiers decide.
   Off: the linked source's full extent is fetched and intersected.
3. **Selectivity ordering** — link steps are ordered most-selective
   first (estimated from conditions and source sizes), so expensive
   steps see fewer surviving anchors.
"""

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class OptimizerOptions:
    """Ablation switches; defaults reproduce full ANNODA behaviour.

    ``enable_semijoin`` activates the future-work optimization the
    paper's conclusion calls for ("new approaches of query
    optimization across multi-systems"): when one include-link is far
    more selective than the anchor, its matching ids are fetched first
    and the anchor is retrieved by id-equality pushdown instead of by
    full scan.
    """

    enable_pushdown: bool = True
    enable_pruning: bool = True
    enable_ordering: bool = True
    enable_semijoin: bool = False
    #: A link qualifies to drive the semijoin when its estimated rows
    #: are below this fraction of the anchor's estimate.
    semijoin_selectivity_threshold: float = 0.25


@dataclass
class FetchStep:
    """One planned source access."""

    source_name: str
    purpose: str
    pushed: list = field(default_factory=list)
    residual: list = field(default_factory=list)
    #: Ontology-closure conditions (op "under"): evaluated by the
    #: mediator against the wrapper's transitive-descendant closure.
    closure: list = field(default_factory=list)
    link: object = None
    #: Pruned steps perform no fetch; the anchor's ids decide.
    pruned: bool = False
    estimated_rows: int = 0
    #: Anchor only: (driving link source, anchor via-label) when the
    #: semijoin strategy retrieves the anchor by link-id equality.
    semijoin: tuple = None
    #: Link only: the anchor's local label carrying this link's ids.
    via_anchor_label: str = None

    def render(self):
        parts = [f"fetch {self.source_name} ({self.purpose})"]
        if self.semijoin is not None:
            parts.append(
                f"SEMIJOIN: anchor fetched by {self.semijoin[1]} ids "
                f"from {self.semijoin[0]}"
            )
        if self.pruned:
            parts.append("PRUNED: answered from anchor link ids")
        elif self.semijoin is None or self.purpose != "anchor":
            pushed = (
                " and ".join(
                    f"{label} {op} {value!r}"
                    for label, op, value in self.pushed
                )
                or "true"
            )
            parts.append(f"push down: {pushed}")
            if self.residual:
                residual = " and ".join(
                    f"{label} {op} {value!r}"
                    for label, op, value in self.residual
                )
                parts.append(f"residual at mediator: {residual}")
            parts.append(f"~{self.estimated_rows} rows")
        return " | ".join(parts)


@dataclass
class ExecutionPlan:
    """Ordered steps: the anchor first, then link steps."""

    anchor: FetchStep
    link_steps: list = field(default_factory=list)
    estimated_cost: float = 0.0

    def steps(self):
        return [self.anchor] + list(self.link_steps)

    def explain(self):
        lines = [f"execution plan (estimated cost {self.estimated_cost:.0f}):"]
        lines.extend(f"  {index + 1}. {step.render()}"
                     for index, step in enumerate(self.steps()))
        return "\n".join(lines)


#: Rough selectivity guesses per operator, used only for ordering and
#: cost estimates (never correctness).
_SELECTIVITY = {
    "=": 0.05,
    "!=": 0.95,
    "<": 0.4,
    "<=": 0.4,
    ">": 0.4,
    ">=": 0.4,
    "like": 0.2,
    "contains": 0.25,
    # Batched key lookup: a handful of needles out of the extent.
    "in": 0.1,
}


class Optimizer:
    """Plan subqueries against a registry of wrappers."""

    def __init__(self, wrappers_by_name, options=None):
        self.wrappers = wrappers_by_name
        self.options = options or OptimizerOptions()

    def plan(self, subqueries):
        anchor_step = None
        link_steps = []
        for subquery in subqueries:
            step = self._plan_step(subquery)
            if subquery.purpose == "anchor":
                if anchor_step is not None:
                    raise ConfigurationError(
                        "plan has more than one anchor subquery"
                    )
                anchor_step = step
            else:
                link_steps.append(step)
        if anchor_step is None:
            raise ConfigurationError("plan has no anchor subquery")
        if self.options.enable_ordering:
            link_steps.sort(key=lambda step: step.estimated_rows)
        if self.options.enable_semijoin:
            self._maybe_semijoin(anchor_step, link_steps)
        cost = float(anchor_step.estimated_rows) + sum(
            step.estimated_rows for step in link_steps
        )
        return ExecutionPlan(
            anchor=anchor_step, link_steps=link_steps, estimated_cost=cost
        )

    def _maybe_semijoin(self, anchor_step, link_steps):
        """Let the most selective qualifying include-link drive the
        anchor fetch by id-equality pushdown."""
        anchor_wrapper = self.wrappers[anchor_step.source_name]
        candidates = [
            step
            for step in link_steps
            if not step.pruned
            and step.link is not None
            and step.link.mode == "include"
            and not step.link.symbol_join
            and step.via_anchor_label is not None
            and anchor_wrapper.supports(step.via_anchor_label, "=")
            and step.estimated_rows
            < anchor_step.estimated_rows
            * self.options.semijoin_selectivity_threshold
        ]
        if not candidates:
            return
        driver = min(candidates, key=lambda step: step.estimated_rows)
        anchor_step.semijoin = (driver.source_name, driver.via_anchor_label)
        # Rough estimate: each selective link id pulls in a couple of
        # anchors; far below a full anchor scan by construction.
        anchor_step.estimated_rows = min(
            anchor_step.estimated_rows, driver.estimated_rows * 2
        )

    def _plan_step(self, subquery):
        wrapper = self.wrappers[subquery.source_name]
        pushed = []
        residual = []
        closure = []
        for label, op, value in subquery.local_conditions:
            if op == "under":
                # Transitive-closure predicates never run natively
                # (the flat sources have no closure capability) and
                # only make sense against an ontology-shaped wrapper.
                if subquery.purpose != "link" or not hasattr(
                    wrapper, "descendants"
                ):
                    raise ConfigurationError(
                        f"'under' requires an ontology link source, "
                        f"not {subquery.source_name!r}"
                    )
                closure.append((label, op, value))
            elif self.options.enable_pushdown and wrapper.supports(
                label, op
            ):
                pushed.append((label, op, value))
            else:
                residual.append((label, op, value))
        estimated_scale = 0.1 ** len(closure)
        pruned = (
            self.options.enable_pruning
            and subquery.purpose == "link"
            and not subquery.local_conditions
            and not (subquery.link and subquery.link.symbol_join)
            # Reverse joins are answered from the linked source's
            # back-references, so its extent must be fetched.
            and not (subquery.link and subquery.link.reverse_join)
        )
        estimated = 0 if pruned else max(
            1,
            int(round(self._estimate_rows(wrapper, pushed)
                      * estimated_scale)),
        )
        return FetchStep(
            source_name=subquery.source_name,
            purpose=subquery.purpose,
            pushed=pushed,
            residual=residual,
            closure=closure,
            link=subquery.link,
            pruned=pruned,
            estimated_rows=estimated,
            via_anchor_label=subquery.via_anchor_label,
        )

    @staticmethod
    def _estimate_rows(wrapper, pushed):
        from repro.oem.types import OEMType

        specs = wrapper.field_specs()
        rows = float(wrapper.count())
        for label, op, _value in pushed:
            selectivity = _SELECTIVITY.get(op, 0.5)
            # Equality on a boolean field splits the extent, it does
            # not pick a needle out of it.
            if op == "=" and label in specs and (
                specs[label][1] is OEMType.BOOLEAN
            ):
                selectivity = 0.5
            rows *= selectivity
        return max(1, int(round(rows)))
