"""The Mediator facade: registration, GML, planning and execution.

Wires the mapping module (MDSM correspondences), the GML builder, the
decomposer, the optimizer and the executor into the single component
Figure 1 draws between the user interface and the wrappers.
"""

from repro.lorel.engine import LorelEngine
from repro.matching.mdsm import MdsmMatcher
from repro.mediator.decompose import QueryDecomposer
from repro.mediator.executor import Executor
from repro.mediator.fetch import FederatedFetcher, FederationPolicy
from repro.mediator.global_schema import GlobalSchema
from repro.mediator.gml import ROOT_NAME, GmlBuilder
from repro.mediator.mapping import MappingModule
from repro.mediator.optimizer import Optimizer, OptimizerOptions
from repro.mediator.reconcile import Reconciler
from repro.trace.recorder import NULL_RECORDER
from repro.util.errors import IntegrationError
from repro.util.locks import new_lock


class Mediator:
    """Federated query answering over registered wrappers."""

    #: Most recently used query results kept per mediator.
    RESULT_CACHE_SIZE = 32

    def __init__(self, global_schema=None, matcher=None,
                 optimizer_options=None, reconciler=None, federation=None,
                 columnar=True, artifacts=None):
        self.global_schema = global_schema or GlobalSchema()
        self.mapping_module = MappingModule(
            global_schema=self.global_schema,
            matcher=matcher or MdsmMatcher(),
        )
        self.optimizer_options = optimizer_options or OptimizerOptions()
        self.reconciler = reconciler or Reconciler()
        #: Concurrency and fault-tolerance knobs of the wrapper
        #: boundary; one fetcher (and its thread pool) is shared by
        #: every executor this mediator builds.
        self.federation = federation or FederationPolicy()
        self._fetcher = FederatedFetcher(self.federation)
        #: Columnar batch execution across the wrapper boundary (the
        #: default); ``False`` restores record-at-a-time fetches.
        self.columnar = columnar
        #: Optional content-addressed stage artifact store
        #: (:class:`~repro.mediator.artifacts.ArtifactStore`), shared
        #: by every execution; ``None`` disables stage reuse.
        self.artifacts = artifacts
        self._wrappers = {}
        self._registration_order = []
        self._gml_cache = None
        # Both caches are shared by every thread querying this
        # mediator (the service's worker pool drives one mediator), so
        # their get/evict/store sequences run under a lock.
        self._result_cache = {}
        self._result_cache_lock = new_lock("Mediator._result_cache_lock")
        # Version-keyed fetch-path caches shared across executions:
        # enrichment indexes and symbol indexes, keyed on (kind, source,
        # wrapper.version, ...), so freshness is never traded away.
        self._fetch_cache = {}
        self._fetch_cache_lock = new_lock("Mediator._fetch_cache_lock")

    # -- source registration (paper section 3.1, two-step plug-in) -------------

    def register_wrapper(self, wrapper):
        """Plug a new annotation source into the federation.

        Step 1: map its schema onto the global schema (MDSM); step 2:
        expose its mediator interface (wrapper registry + GML entry).
        Returns the correspondence set MDSM produced.
        """
        if wrapper.name in self._wrappers:
            raise IntegrationError(
                f"source {wrapper.name!r} is already registered"
            )
        correspondence_set = self.mapping_module.register_wrapper(wrapper)
        self._wrappers[wrapper.name] = wrapper
        self._registration_order.append(wrapper.name)
        self._gml_cache = None
        return correspondence_set

    def register_replicas(self, wrappers):
        """Plug N interchangeable wrappers of one source in as a
        :class:`~repro.mediator.replicas.ReplicaSet` — one registry
        entry whose fetches fail over between the replicas before the
        federation policy ever sees a failure."""
        from repro.mediator.replicas import ReplicaSet

        return self.register_wrapper(ReplicaSet(wrappers))

    def unregister_source(self, source_name):
        """Remove a source from the federation."""
        if source_name not in self._wrappers:
            raise IntegrationError(
                f"source {source_name!r} is not registered"
            )
        del self._wrappers[source_name]
        self._registration_order.remove(source_name)
        self.mapping_module.unregister(source_name)
        self._gml_cache = None
        # A later re-registration under the same name may reuse version
        # numbers, so its cache entries must not survive it — neither
        # the enrichment/symbol indexes nor whole cached results (both
        # are keyed on (source name, version), which a different store
        # registered under the same name can collide with).
        with self._fetch_cache_lock:
            self._fetch_cache = {
                key: value
                for key, value in self._fetch_cache.items()
                if key[1] != source_name
            }
        with self._result_cache_lock:
            self._result_cache = {
                key: value
                for key, value in self._result_cache.items()
                if all(name != source_name for name, _version in key[2])
            }
        # Stage artifacts are tagged with their participating sources
        # for exactly this hazard: a re-registered store may reuse the
        # old version counters, so version-keyed content addresses
        # would collide with the stale entries.
        if self.artifacts is not None:
            self.artifacts.invalidate_source(source_name)

    def sources(self):
        """Registered source names in registration order."""
        return list(self._registration_order)

    def wrapper(self, source_name):
        try:
            return self._wrappers[source_name]
        except KeyError:
            raise IntegrationError(
                f"source {source_name!r} is not registered"
            ) from None

    def correspondences(self, source_name):
        return self.mapping_module.correspondences(source_name)

    # -- ANNODA-GML ----------------------------------------------------------------

    def gml(self):
        """The current global model as ``(graph, root)``.

        Rebuilt whenever registration or any source version changes —
        the federated view always reflects live sources.
        """
        versions = tuple(
            self._wrappers[name].version for name in self._registration_order
        )
        if self._gml_cache is None or self._gml_cache[0] != versions:
            builder = GmlBuilder(self.mapping_module)
            graph, root = builder.build(
                [self._wrappers[name] for name in self._registration_order]
            )
            self._gml_cache = (versions, graph, root)
        return self._gml_cache[1], self._gml_cache[2]

    def lorel_engine(self):
        """A Lorel engine with the current GML registered, for raw
        section-4.1-style queries."""
        graph, root = self.gml()
        engine = LorelEngine()
        engine.register(ROOT_NAME, graph, root)
        return engine

    # -- global query answering -------------------------------------------------------

    def plan(self, query, recorder=NULL_RECORDER):
        """Decompose, build and optimize ``query`` into its
        :class:`~repro.mediator.plan.PhysicalPlan`.

        The decompose span covers subquery translation *and* the
        logical-tree build (decomposition owns the tree shape); the
        optimize span covers the rule passes and lowering, and its
        attributes enumerate which rules fired and which were skipped.
        """
        decomposer = QueryDecomposer(self.mapping_module)
        optimizer = Optimizer(
            self._wrappers, self.optimizer_options, columnar=self.columnar
        )
        with recorder.span("decompose") as span:
            subqueries = decomposer.decompose(query)
            logical = decomposer.logical_plan(
                subqueries, select=query.select
            )
            span.set("subqueries", len(subqueries))
        with recorder.span("optimize") as span:
            optimized, rules = optimizer.optimize_logical(logical)
            plan = optimizer.lower(optimized, rules=rules)
            span.set("anchor", plan.anchor.source_name)
            span.set("link_steps", len(plan.link_steps))
            span.set("rules_fired", list(rules.fired()))
            span.set("rules_skipped", list(rules.skipped()))
            if plan.anchor.semijoin is not None:
                span.set("semijoin", plan.anchor.semijoin[0])
        return plan

    def query(self, query, enrich_links=True, use_cache=True,
              recorder=NULL_RECORDER, budget=None):
        """Answer a :class:`~repro.mediator.decompose.GlobalQuery`.

        Results are cached keyed on the query *and every source's
        version counter*, so a cache hit is always as fresh as a
        recomputation — a repeat question costs nothing, while any
        source update invalidates automatically (the federated
        freshness guarantee is never traded away).

        Pass a :class:`~repro.trace.recorder.TraceRecorder` to record
        the query flight: the result's :attr:`IntegratedResult.trace`
        becomes the closed span tree.  A traced query never reads the
        result cache (a cache hit would replay nothing and the trace
        would be empty), but it still populates the cache for later
        untraced repeats.

        Pass a :class:`~repro.util.cancel.RequestBudget` as ``budget``
        to bound the whole query: once it expires (or is cancelled)
        every outstanding fetch returns a ``timeout`` reply
        immediately and the federation policy decides between a
        degraded partial answer and an abort.  An answer degraded by
        budget exhaustion is never stored in the result cache — a
        later repeat with a fresh budget must get a full answer, not
        a replay of the truncated one.
        """
        tracing = recorder.enabled
        cache_key = None
        if use_cache:
            cache_key = self._cache_key(query, enrich_links)
            if not tracing:
                with self._result_cache_lock:
                    cached = self._result_cache.get(cache_key)
                if cached is not None:
                    # Mark the (shared) result so callers folding
                    # execution stats into service metrics can tell a
                    # warm replay from work actually performed.
                    cached.from_result_cache = True
                    return cached
        with recorder.span(
            "query", attributes={"anchor": query.anchor_source}
        ) as query_span:
            plan = self.plan(query, recorder=recorder)
            # Snapshot the cache binding under its lock:
            # unregister_source rebinds self._fetch_cache concurrently,
            # and a torn read here would resurrect evicted entries.
            with self._fetch_cache_lock:
                fetch_cache = self._fetch_cache
            executor = Executor(
                self._wrappers, self.mapping_module, self.reconciler,
                enrichment_cache=fetch_cache,
                enrichment_cache_lock=self._fetch_cache_lock,
                fetcher=self._fetcher, policy=self.federation,
                columnar=self.columnar, artifacts=self.artifacts,
                budget=budget,
            )
            result = executor.execute(
                plan, query, enrich_links=enrich_links, recorder=recorder
            )
            query_span.set("genes", len(result.genes))
        if tracing:
            result.trace = recorder.root
        if budget is not None and budget.expired and result.report.degraded:
            # Only *budget-caused* truncation is uncacheable; an answer
            # degraded by a source fault is cached exactly as the same
            # query without a budget would cache it.
            cache_key = None
        if cache_key is not None:
            with self._result_cache_lock:
                if len(self._result_cache) >= self.RESULT_CACHE_SIZE:
                    # Drop the oldest entry (insertion order).
                    oldest = next(iter(self._result_cache))
                    del self._result_cache[oldest]
                self._result_cache[cache_key] = result
        return result

    def _cache_key(self, query, enrich_links):
        versions = tuple(
            (name, self._wrappers[name].version)
            for name in self._registration_order
        )
        return (
            query,
            enrich_links,
            versions,
            self.optimizer_options,
            self.reconciler.policy,
            self.federation,
        )

    def explain(self, query):
        """The full plan story as human-readable text: logical tree,
        per-rule fired/skipped report, execution steps, stage DAG,
        and where each stage's fetch lands on the (shard, replica)
        grid."""
        from repro.mediator.scheduler import StageScheduler

        plan = self.plan(query)
        placement = StageScheduler().describe_grid(plan, self._wrappers)
        return plan.describe() + "\n\n" + placement
