"""The wrapper-boundary fetch protocol: FetchRequest/FetchReply.

The paper's mediator queries three *live, remote* web databases, so
the real system's bottleneck and failure mode is the wrapper boundary:
per-source fetches are independent yet naturally sequential in naive
code, and a single unavailable source would kill a whole query.
Mediator peers handle this explicitly — YeastMed tolerates unavailable
sources and returns partial integrated answers; BioThings Explorer
runs federated sub-queries concurrently with per-API timeouts.  This
module gives ANNODA both behaviours behind one explicit protocol:

- :class:`FetchRequest` — what to fetch (OML-label conditions) plus
  how hard to try (per-attempt timeout, overall deadline, retry
  budget);
- :class:`FetchReply` — what came back: records, per-attempt timings,
  index/scan accounting, and a terminal status (``ok`` / ``error`` /
  ``timeout``) instead of an exception;
- :class:`FederationPolicy` — the federation-wide defaults a request
  inherits (worker count, timeout, retries, backoff, and whether a
  failing source degrades the answer or aborts it);
- :class:`FederatedFetcher` — issues independent per-source requests
  concurrently on a thread pool, retrying with exponential backoff;
- :class:`FlakyWrapper` — fault injection (error rate, latency,
  blackout windows) for tests and the concurrency benchmark.

Nothing here imports the wrapper or executor layers, so the protocol
sits cleanly between them (wrappers duck-type the request; the
executor consumes replies).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sources.batch import RecordBatch
from repro.trace.recorder import NULL_RECORDER
from repro.util.cancel import RequestBudget
from repro.util.clock import default_clock
from repro.util.errors import IntegrationError
from repro.util.locks import new_lock
from repro.util.rng import DeterministicRng

#: Reply statuses a fetch can terminate with.
FETCH_STATUSES = ("ok", "error", "timeout")


def _normalize_conditions(
    conditions: Iterable[Any],
) -> Tuple[Tuple[str, str, Any], ...]:
    """Conditions as a tuple of plain ``(label, op, value)`` triples.

    Accepts any iterable of triple-unpackable items (plain tuples,
    :class:`~repro.mediator.decompose.Condition` objects, lists); the
    value of an ``in`` condition is frozen to a tuple so the request
    stays immutable.
    """
    normalized = []
    for condition in conditions:
        if hasattr(condition, "attribute"):
            label, op, value = (
                condition.attribute, condition.op, condition.value
            )
        else:
            label, op, value = condition
        if op == "in" and not isinstance(value, tuple):
            value = tuple(value)
        normalized.append((label, op, value))
    return tuple(normalized)


@dataclass(frozen=True)
class FetchRequest:
    """One source fetch: what to retrieve and how hard to try.

    ``conditions`` are OML-label triples (the wrapper translates them
    to source-native fields).  ``timeout`` bounds one attempt,
    ``deadline`` bounds the whole request (all attempts + backoff),
    both in seconds; ``retries`` is the retry budget *beyond* the
    first attempt.  ``None`` means "inherit from the federation
    policy".  ``purpose`` is a diagnostic tag carried into the reply
    and the execution report.
    """

    conditions: Tuple[Tuple[str, str, Any], ...] = ()
    purpose: str = "fetch"
    timeout: Optional[float] = None
    deadline: Optional[float] = None
    retries: Optional[int] = None
    backoff: Optional[float] = None
    #: Ask the wrapper for a columnar
    #: :class:`~repro.sources.batch.RecordBatch` instead of a record
    #: list (the reply's ``records`` carries the batch).
    columnar: bool = False
    #: Stage-scheduler shard pin ``(index, count)``: the wrapper
    #: serves only partition ``index`` of a ``count``-way shard grid
    #: (``None`` fetches the whole extent).  Participates in equality
    #: — a shard partial is not the whole fetch.
    shard: Optional[Tuple[int, int]] = None
    #: Cooperative whole-request budget
    #: (:class:`~repro.util.cancel.RequestBudget`) shared by every
    #: fetch one mediator/service request issues: an expired or
    #: cancelled budget turns the fetch into an immediate ``timeout``
    #: reply.  Excluded from equality/hash so requests stay usable as
    #: cache keys.
    budget: Optional[RequestBudget] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "conditions", _normalize_conditions(self.conditions)
        )

    @classmethod
    def where(cls, *conditions: Any, **kwargs: Any) -> "FetchRequest":
        """``FetchRequest.where(("Symbol", "=", "BRCA1"))`` sugar."""
        return cls(conditions=conditions, **kwargs)

    def render(self) -> str:
        rendered = (
            " and ".join(
                f"{label} {op} {value!r}"
                for label, op, value in self.conditions
            )
            or "true"
        )
        return f"{self.purpose}: {rendered}"


@dataclass(frozen=True)
class FetchAttempt:
    """One timed try at a source: number, wall seconds, outcome."""

    number: int
    elapsed: float
    outcome: str  # "ok" | "error" | "timeout"
    error: Optional[str] = None


@dataclass(frozen=True)
class FetchReply:
    """What one :class:`FetchRequest` produced.

    A failed or timed-out fetch is a *reply*, not an exception — the
    caller decides (per its federation policy) whether to degrade the
    integrated answer or abort it via :meth:`raise_if_failed`.
    """

    source: str
    request: FetchRequest
    #: Tuple of record dicts — or one :class:`RecordBatch` for a
    #: columnar request (``len(reply.records)`` counts rows either
    #: way).
    records: Any = ()
    status: str = "ok"
    attempts: Tuple[FetchAttempt, ...] = ()
    elapsed: float = 0.0
    #: Source-level fetch-path accounting observed across this reply's
    #: attempts (best-effort under concurrency: counters are shared
    #: per source, so overlapping fetches may attribute each other's
    #: lookups).
    index_hits: int = 0
    scan_queries: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retries(self) -> int:
        """Attempts beyond the first (the spent retry budget)."""
        return max(0, len(self.attempts) - 1)

    @property
    def timeouts(self) -> int:
        return sum(
            1 for attempt in self.attempts if attempt.outcome == "timeout"
        )

    def raise_if_failed(self) -> "FetchReply":
        if not self.ok:
            raise IntegrationError(
                f"source {self.source!r} failed during fetch: {self.error}"
            )
        return self

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class FederationPolicy:
    """Fault-tolerance and concurrency knobs of the wrapper boundary.

    The defaults reproduce the seed's semantics exactly (no retries,
    no timeouts, failures abort the query) while fetching independent
    per-source steps concurrently; set ``on_failure="degrade"`` for
    YeastMed-style partial answers and ``retries``/``timeout`` for
    BioThings-style per-API resilience.
    """

    #: Thread-pool width for independent per-source fetches; 1 runs
    #: the seed's sequential path.
    max_workers: int = 4
    #: Per-attempt timeout in seconds (None: wait forever).
    timeout: Optional[float] = None
    #: Overall per-request deadline in seconds (None: unbounded).
    deadline: Optional[float] = None
    #: Retry budget beyond the first attempt.
    retries: int = 0
    #: Base of the exponential backoff between attempts, in seconds
    #: (attempt *n* sleeps ``backoff * 2**(n-1)``, capped).  Kept
    #: jitter-free so retried executions stay deterministic.
    backoff: float = 0.02
    backoff_cap: float = 0.5
    #: ``"raise"`` aborts the query on a failed source (seed
    #: behaviour); ``"degrade"`` returns a partial integrated answer
    #: whose report marks the source degraded.
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.on_failure not in ("raise", "degrade"):
            raise ValueError(
                f"on_failure must be 'raise' or 'degrade', "
                f"not {self.on_failure!r}"
            )
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    @property
    def degrades(self) -> bool:
        return self.on_failure == "degrade"


class FederatedFetcher:
    """Concurrent, fault-tolerant fetch dispatch over wrappers.

    One fetcher (and its thread pool) is shared by all executions of a
    mediator; :meth:`fetch_all` issues a batch of independent
    ``(wrapper, request)`` jobs concurrently and returns replies in
    job order, so callers stay deterministic regardless of completion
    order.  Each job retries with exponential backoff inside its
    request's deadline; a per-attempt timeout abandons the attempt's
    worker thread (the slow call keeps running in the background —
    exactly the semantics of abandoning a slow HTTP request).
    """

    def __init__(self, policy: Optional[FederationPolicy] = None) -> None:
        self.policy = policy or FederationPolicy()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = new_lock("FederatedFetcher._lock")

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.policy.max_workers,
                    thread_name_prefix="annoda-fetch",
                )
            return self._pool

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def __enter__(self) -> "FederatedFetcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def fetch(self, wrapper: Any, request: FetchRequest,
              recorder: Any = NULL_RECORDER) -> FetchReply:
        """Run one request to completion (retries included)."""
        return self._run_job(
            wrapper, request, recorder, recorder.current(),
            recorder.next_sequence(),
        )

    def fetch_all(
        self,
        jobs: Iterable[Tuple[Any, FetchRequest]],
        recorder: Any = NULL_RECORDER,
    ) -> List[FetchReply]:
        """Run ``(wrapper, request)`` jobs concurrently.

        Replies come back in job order.  With ``max_workers=1`` (or a
        single job) the jobs run sequentially on the calling thread —
        the seed's exact execution order.

        Tracing stays deterministic under the pool: the calling thread
        captures its current span as the shared parent and reserves
        one sequence slot per job *in job order*, so the per-request
        spans the workers build always export as siblings in job
        order, regardless of completion order.
        """
        jobs = list(jobs)
        parent = recorder.current()
        sequences = [recorder.next_sequence() for _ in jobs]
        if len(jobs) <= 1 or self.policy.max_workers <= 1:
            return [
                self._run_job(wrapper, request, recorder, parent, sequence)
                for (wrapper, request), sequence in zip(jobs, sequences)
            ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                self._run_job, wrapper, request, recorder, parent, sequence
            )
            for (wrapper, request), sequence in zip(jobs, sequences)
        ]
        return [future.result() for future in futures]

    # -- one job -------------------------------------------------------------

    def _run_job(self, wrapper: Any, request: FetchRequest,
                 recorder: Any = NULL_RECORDER, parent: Any = None,
                 sequence: Optional[int] = None) -> FetchReply:
        if not recorder.enabled:
            # The zero-cost-when-off path: no span, no name formatting.
            return self._run_request(wrapper, request)
        attributes = {"source": wrapper.name, "purpose": request.purpose}
        span_name = f"fetch:{wrapper.name}"
        if request.shard is not None:
            # A scheduler-placed shard fetch: one physical cell of the
            # (shard, replica) grid, named uniformly so trace shapes
            # stay stable across sources.
            span_name = "fetch:shard"
            attributes["shard"] = request.shard[0]
            attributes["shard_count"] = request.shard[1]
            preferred = getattr(wrapper, "preferred_replica", None)
            if preferred is not None:
                attributes["replica"] = preferred(request)
        trace_attributes = getattr(wrapper, "trace_attributes", None)
        if trace_attributes is not None:
            attributes.update(trace_attributes())
        span = recorder.open_span(
            span_name,
            attributes=attributes,
            parent=parent,
            sequence=sequence,
        )
        try:
            reply = self._run_request(wrapper, request)
        except BaseException as exc:
            recorder.close_span(span, error=exc)
            raise
        span.incr("rows", len(reply.records))
        span.incr("attempts", len(reply.attempts))
        span.incr("retries", reply.retries)
        span.incr("timeouts", reply.timeouts)
        span.set("status", reply.status)
        if reply.error is not None:
            span.set("error", reply.error)
        if reply.index_hits or reply.scan_queries:
            span.set("reply_index_hits", reply.index_hits)
            span.set("reply_scan_queries", reply.scan_queries)
        recorder.close_span(span)
        return reply

    def _run_request(self, wrapper: Any, request: FetchRequest) -> FetchReply:
        policy = self.policy
        timeout = (
            request.timeout if request.timeout is not None else policy.timeout
        )
        deadline = (
            request.deadline
            if request.deadline is not None
            else policy.deadline
        )
        budget = (
            request.retries if request.retries is not None else policy.retries
        )
        backoff = (
            request.backoff if request.backoff is not None else policy.backoff
        )
        request_budget = request.budget
        started = time.perf_counter()
        counters_before = self._source_counters(wrapper)
        attempts: List[FetchAttempt] = []
        records: Any = ()
        status, error = "error", "no attempt made"
        for number in range(budget + 1):
            remaining = (
                None
                if deadline is None
                else deadline - (time.perf_counter() - started)
            )
            # The cooperative request budget bounds all fetches of one
            # mediator/service request together, so it can only ever
            # tighten the per-fetch deadline.
            budget_remaining = (
                None if request_budget is None else request_budget.remaining()
            )
            if budget_remaining is not None and (
                remaining is None or budget_remaining < remaining
            ):
                remaining = budget_remaining
            if remaining is not None and remaining <= 0:
                bound = (
                    request_budget.describe()
                    if request_budget is not None and request_budget.expired
                    else f"deadline of {deadline or 0.0:.3f}s"
                )
                status, error = "timeout", (
                    f"{bound}; gave up after {len(attempts)} attempt(s)"
                )
                break
            attempt_timeout = timeout
            if remaining is not None:
                attempt_timeout = (
                    remaining
                    if attempt_timeout is None
                    else min(attempt_timeout, remaining)
                )
            outcome, result, attempt_error, elapsed = self._attempt(
                wrapper, request, attempt_timeout
            )
            attempts.append(
                FetchAttempt(number + 1, elapsed, outcome, attempt_error)
            )
            if outcome == "ok":
                records = (
                    result
                    if isinstance(result, RecordBatch)
                    else tuple(result)
                )
                status, error = "ok", None
                break
            status, error = outcome, attempt_error
            if number < budget:
                delay = min(backoff * (2 ** number), policy.backoff_cap)
                if remaining is not None:
                    delay = min(delay, max(0.0, remaining - elapsed))
                if delay > 0:
                    # Through the clock seam: a FakeClock fast-forwards
                    # the backoff instead of parking the worker thread.
                    default_clock().sleep(delay)
        counters_after = self._source_counters(wrapper)
        return FetchReply(
            source=wrapper.name,
            request=request,
            records=records,
            status=status,
            attempts=tuple(attempts),
            elapsed=time.perf_counter() - started,
            index_hits=(
                counters_after["index_hits"] - counters_before["index_hits"]
            ),
            scan_queries=(
                counters_after["scan_queries"]
                - counters_before["scan_queries"]
            ),
            error=error,
        )

    @staticmethod
    def _source_counters(wrapper: Any) -> Dict[str, int]:
        source = getattr(wrapper, "source", None)
        fetch_stats = getattr(source, "fetch_stats", None)
        if fetch_stats is None:
            return {"index_hits": 0, "scan_queries": 0}
        counters = fetch_stats()
        return {
            "index_hits": counters.get("index_hits", 0),
            "scan_queries": counters.get("scan_queries", 0),
        }

    @staticmethod
    def _attempt(
        wrapper: Any, request: FetchRequest, timeout: Optional[float]
    ) -> Tuple[str, Any, Optional[str], float]:
        started = time.perf_counter()
        if timeout is None:
            try:
                records = wrapper.fetch(request)
            except Exception as exc:
                return (
                    "error", None, str(exc) or type(exc).__name__,
                    time.perf_counter() - started,
                )
            return "ok", records, None, time.perf_counter() - started
        box: Dict[str, Any] = {}

        def run() -> None:
            try:
                box["records"] = wrapper.fetch(request)
            except Exception as exc:  # delivered to the waiting thread
                box["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout)
        elapsed = time.perf_counter() - started
        if thread.is_alive():
            return (
                "timeout", None,
                f"no reply within {timeout:.3f}s", elapsed,
            )
        if "error" in box:
            exc = box["error"]
            return "error", None, str(exc) or type(exc).__name__, elapsed
        return "ok", box.get("records", []), None, elapsed


class FlakyWrapper:
    """Fault-injection proxy around any wrapper.

    Delegates everything to the wrapped wrapper but makes ``fetch``
    misbehave on demand:

    - ``error_rate`` — deterministic (seeded) fraction of calls that
      raise :class:`ConnectionError`;
    - ``latency`` — seconds slept before every call (simulated network
      round-trip);
    - ``scan_latency_per_row`` — seconds slept per row of the served
      partition (a shard-pinned request sleeps for its shard's share
      of the extent, the whole extent otherwise): the remote
      partition-scan cost model the shard-sweep benchmark scales
      down by fanning fetches across the grid;
    - ``fail_first`` — the first N calls fail regardless of rate
      (recovers afterwards: the retry-success scenario);
    - ``blackout`` — while True every call fails (toggle it to
      simulate an outage window);
    - ``blackout_windows`` — ``(first_call, last_call)`` inclusive
      call-count ranges during which calls fail.

    Counters (``calls``, ``failures``) and the RNG are lock-protected
    so concurrent fetches inject faults consistently.
    """

    def __init__(self, wrapper: Any, error_rate: float = 0.0,
                 latency: float = 0.0, fail_first: int = 0,
                 blackout: bool = False,
                 blackout_windows: Iterable[Tuple[int, int]] = (),
                 scan_latency_per_row: float = 0.0,
                 seed: int = 0) -> None:
        self._wrapped = wrapper
        self.error_rate = error_rate
        self.latency = latency
        self.scan_latency_per_row = scan_latency_per_row
        self.fail_first = fail_first
        self.blackout = blackout
        self.blackout_windows = tuple(blackout_windows)
        self.calls = 0
        self.failures = 0
        self._rng = DeterministicRng(seed)
        self._mutex = new_lock("FlakyWrapper._mutex")

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wrapped, name)

    @property
    def wrapped(self) -> Any:
        return self._wrapped

    def fetch(self, request: Any = ()) -> Any:
        with self._mutex:
            self.calls += 1
            number = self.calls
            fail = self._should_fail(number)
            if fail:
                self.failures += 1
        if self.latency > 0:
            default_clock().sleep(self.latency)
        if self.scan_latency_per_row > 0:
            default_clock().sleep(
                self.scan_latency_per_row * self._partition_rows(request)
            )
        if fail:
            raise ConnectionError(
                f"injected fault on {self._wrapped.name} "
                f"(call {number})"
            )
        return self._wrapped.fetch(request)

    def _partition_rows(self, request: Any) -> float:
        """Rows the served partition holds: the shard's share of the
        extent for a shard-pinned request, the whole extent
        otherwise."""
        count = getattr(self._wrapped, "count", None)
        total = float(count()) if callable(count) else 0.0
        shard = getattr(request, "shard", None)
        if shard is not None:
            return total / max(1, shard[1])
        return total

    def _should_fail(self, number: int) -> bool:
        if self.blackout:
            return True
        for first, last in self.blackout_windows:
            if first <= number <= last:
                return True
        if number <= self.fail_first:
            return True
        if self.error_rate > 0 and self._rng.random() < self.error_rate:
            return True
        return False
