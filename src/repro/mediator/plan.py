"""First-class planning IR: logical plan, rule optimizer, physical DAG.

The mediator pipeline (decompose -> optimize -> execute) plans through
three explicit layers instead of one ad-hoc structure:

1. **Logical plan** — a tree of relational-style nodes built from the
   decomposer's subqueries: the anchor is a :class:`Scan` under a
   :class:`Filter`; every include-link adds a :class:`SemiJoin` layer
   (exclude-links an :class:`AntiJoin`), whose right side is the linked
   source's own Scan/Filter subtree (plus a :class:`ClosureFilter` for
   ontology ``under`` predicates); :class:`Reconcile`, :class:`Enrich`
   and :class:`Project` cap the tree.  The logical tree states *what*
   the query joins, not how.
2. **Rule optimizer** — :class:`RuleOptimizer` rewrites the tree via
   named passes (:data:`RULE_NAMES`): predicate pushdown, link-fetch
   pruning, selectivity ordering and semijoin anchor selection — one
   rule per :class:`OptimizerOptions` switch, each leaving a
   :class:`RuleRecord` saying whether it fired and why.  Nodes are
   frozen dataclasses; rules rewrite with :func:`dataclasses.replace`
   (lint rule ANN006 enforces that nothing mutates a node in place).
3. **Physical plan** — :class:`PhysicalPlanner` lowers the optimized
   tree to a :class:`PhysicalPlan`: a DAG of executable stages on the
   existing ``RecordBatch``/artifact boundaries.  Each
   :class:`FetchStage` carries everything the executor needs (pushed/
   residual/closure conditions, link join shape, semijoin driver), and
   its :meth:`FetchStage.fingerprint` is the exact content-address
   input of the stage artifact keys — lowering never changes what a
   stage means, only where its description lives.

Lowering invariants (locked in by the property suite):

- the multiset of ``(source, purpose)`` fetch stages equals the
  multiset of logical Scans, under every OptimizerOptions ablation;
- the anchor stage is always first; link stages keep the optimized
  join-chain order;
- stage fingerprints are byte-identical to the pre-IR plan encoding,
  so artifact keys (and the pinned-digest test) survive the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.util.errors import ConfigurationError

#: One predicate in a source's local vocabulary.
ConditionTriple = Tuple[str, str, Any]
Conditions = Tuple[ConditionTriple, ...]


class LinkLike(Protocol):
    """The shape of a decomposed link constraint the planner reads."""

    source_name: str
    mode: str
    via: str
    symbol_join: bool
    reverse_join: bool


class SubQueryLike(Protocol):
    """The shape of a decomposed subquery the logical builder reads."""

    source_name: str
    purpose: str
    local_conditions: Sequence[Tuple[str, str, Any]]
    link: Optional[LinkLike]
    via_anchor_label: Optional[str]


class WrapperLike(Protocol):
    """The wrapper capabilities the optimizer consults."""

    def supports(self, label: str, op: str) -> bool: ...

    def count(self) -> int: ...

    def field_specs(self) -> Mapping[str, Sequence[Any]]: ...


@dataclass(frozen=True)
class OptimizerOptions:
    """Ablation switches; defaults reproduce full ANNODA behaviour.

    Each switch enables one named optimizer rule (see
    :data:`RULE_NAMES`).  ``enable_semijoin`` activates the future-work
    optimization the paper's conclusion calls for ("new approaches of
    query optimization across multi-systems"): when one include-link is
    far more selective than the anchor, its matching ids are fetched
    first and the anchor is retrieved by id-equality pushdown instead
    of by full scan.
    """

    enable_pushdown: bool = True
    enable_pruning: bool = True
    enable_ordering: bool = True
    enable_semijoin: bool = False
    #: A link qualifies to drive the semijoin when its estimated rows
    #: are below this fraction of the anchor's estimate.
    semijoin_selectivity_threshold: float = 0.25


class SemiJoinSpec(NamedTuple):
    """Anchor retrieval strategy: fetch anchors by the driving link's
    ids instead of scanning (a plain 2-tuple, so equality with
    ``(driver, label)`` pairs and artifact-key encoding both hold)."""

    driver_source: str
    via_anchor_label: str


def _render_conditions(conditions: Conditions) -> str:
    return " and ".join(
        f"{label} {op} {value!r}" for label, op, value in conditions
    )


# -- logical plan nodes -------------------------------------------------------


@dataclass(frozen=True)
class LogicalNode:
    """Base of the node catalog.  Nodes are frozen: the optimizer
    rewrites trees with :func:`dataclasses.replace`, never in place."""

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalNode):
    """One source's extent.  ``pushed`` conditions run natively at the
    source (filled by the pushdown rule); ``pruned`` scans fetch
    nothing (the anchor's own link ids decide); a ``semijoin`` spec on
    the anchor scan retrieves it by link-id equality."""

    source_name: str
    purpose: str  # "anchor" | "link"
    pushed: Conditions = ()
    estimated_rows: int = 0
    pruned: bool = False
    semijoin: Optional[SemiJoinSpec] = None

    def label(self) -> str:
        parts = [f"Scan {self.source_name} ({self.purpose})"]
        if self.semijoin is not None:
            parts.append(
                f"SEMIJOIN by {self.semijoin.via_anchor_label} ids "
                f"from {self.semijoin.driver_source}"
            )
        if self.pruned:
            parts.append("PRUNED")
        if self.pushed:
            parts.append(f"push down: {_render_conditions(self.pushed)}")
        parts.append(f"~{self.estimated_rows} rows")
        return " | ".join(parts)


@dataclass(frozen=True)
class Filter(LogicalNode):
    """Residual predicates evaluated at the mediator."""

    child: LogicalNode
    conditions: Conditions = ()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter [{_render_conditions(self.conditions)}]"


@dataclass(frozen=True)
class ClosureFilter(LogicalNode):
    """Ontology transitive-closure predicates (op ``under``),
    evaluated by the mediator against the wrapper's descendant
    closure."""

    child: LogicalNode
    conditions: Conditions = ()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"ClosureFilter [{_render_conditions(self.conditions)}]"


@dataclass(frozen=True)
class SemiJoin(LogicalNode):
    """Keep left-side anchors having a qualifying right-side link."""

    left: LogicalNode
    right: LogicalNode
    link: LinkLike
    via_anchor_label: Optional[str] = None

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return _join_label("SemiJoin", self.link)


@dataclass(frozen=True)
class AntiJoin(LogicalNode):
    """Keep left-side anchors having *no* qualifying right-side link
    (the exclude-link constraint)."""

    left: LogicalNode
    right: LogicalNode
    link: LinkLike
    via_anchor_label: Optional[str] = None

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return _join_label("AntiJoin", self.link)


def _join_label(kind: str, link: LinkLike) -> str:
    parts = [f"{kind} {link.source_name} via {link.via}"]
    if link.reverse_join:
        parts.append("(reverse join)")
    if link.symbol_join:
        parts.append("+ symbol join")
    return " ".join(parts)


@dataclass(frozen=True)
class Reconcile(LogicalNode):
    """Apply the reconciler while matching link constraints."""

    child: LogicalNode

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Enrich(LogicalNode):
    """Attach linked-source detail to surviving anchors (the executor
    may skip it when the caller asks for ids only)."""

    child: LogicalNode

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Project(LogicalNode):
    """Restrict the integrated answer to the selected attributes."""

    child: LogicalNode
    select: Tuple[str, ...] = ()

    def children(self) -> Tuple[LogicalNode, ...]:
        return (self.child,)

    def label(self) -> str:
        if not self.select:
            return "Project *"
        return f"Project [{', '.join(self.select)}]"


@dataclass(frozen=True)
class LogicalPlan:
    """One immutable logical tree (the decomposer's output and the
    rule optimizer's input/output)."""

    root: LogicalNode

    def walk(self) -> Iterator[LogicalNode]:
        """Every node, pre-order."""
        stack: List[LogicalNode] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def scans(self) -> Tuple[Scan, ...]:
        """Every Scan leaf, in tree order."""
        return tuple(
            node for node in self.walk() if isinstance(node, Scan)
        )

    def render(self) -> str:
        """Indented tree text."""
        lines = ["logical plan:"]

        def emit(node: LogicalNode, depth: int) -> None:
            lines.append("  " * (depth + 1) + node.label())
            for child in node.children():
                emit(child, depth + 1)

        emit(self.root, 0)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return _node_to_dict(self.root)


def _node_to_dict(node: LogicalNode) -> Dict[str, Any]:
    data: Dict[str, Any] = {"node": type(node).__name__}
    if isinstance(node, Scan):
        data["source"] = node.source_name
        data["purpose"] = node.purpose
        data["pushed"] = [list(triple) for triple in node.pushed]
        data["estimated_rows"] = node.estimated_rows
        data["pruned"] = node.pruned
        data["semijoin"] = (
            None if node.semijoin is None else list(node.semijoin)
        )
    elif isinstance(node, (Filter, ClosureFilter)):
        data["conditions"] = [list(triple) for triple in node.conditions]
    elif isinstance(node, (SemiJoin, AntiJoin)):
        data["source"] = node.link.source_name
        data["via"] = node.link.via
        data["symbol_join"] = bool(node.link.symbol_join)
        data["reverse_join"] = bool(node.link.reverse_join)
        data["via_anchor_label"] = node.via_anchor_label
    elif isinstance(node, Project):
        data["select"] = list(node.select)
    children = [_node_to_dict(child) for child in node.children()]
    if children:
        data["children"] = children
    return data


# -- building the logical tree ------------------------------------------------


def build_logical(
    subqueries: Sequence[SubQueryLike], select: Sequence[str] = ()
) -> LogicalPlan:
    """The canonical logical tree for one decomposed query.

    Left-deep: the anchor's Scan/Filter subtree at the bottom, one
    SemiJoin/AntiJoin layer per link constraint in decomposition
    order, capped by Reconcile -> Enrich -> Project.

    Raises
    ------
    ConfigurationError
        Without exactly one anchor subquery, or when an ``under``
        predicate appears outside a link subquery (closure predicates
        never run on the anchor).
    """
    anchor: Optional[SubQueryLike] = None
    links: List[SubQueryLike] = []
    for subquery in subqueries:
        if subquery.purpose == "anchor":
            if anchor is not None:
                raise ConfigurationError(
                    "plan has more than one anchor subquery"
                )
            anchor = subquery
        else:
            links.append(subquery)
    if anchor is None:
        raise ConfigurationError("plan has no anchor subquery")
    tree = _source_subtree(anchor)
    for subquery in links:
        link = subquery.link
        if link is None:
            raise ConfigurationError(
                f"link subquery for {subquery.source_name!r} carries "
                "no link constraint"
            )
        join_type = SemiJoin if link.mode == "include" else AntiJoin
        tree = join_type(
            left=tree,
            right=_source_subtree(subquery),
            link=link,
            via_anchor_label=subquery.via_anchor_label,
        )
    return LogicalPlan(
        root=Project(
            child=Enrich(child=Reconcile(child=tree)),
            select=tuple(select),
        )
    )


def _source_subtree(subquery: SubQueryLike) -> LogicalNode:
    """Scan under Filter under ClosureFilter (each layer only when it
    has conditions).  Every condition starts residual; the pushdown
    rule moves what a wrapper can evaluate natively into the Scan."""
    plain: List[ConditionTriple] = []
    closure: List[ConditionTriple] = []
    for label, op, value in subquery.local_conditions:
        if op == "under":
            closure.append((label, op, value))
        else:
            plain.append((label, op, value))
    if closure and subquery.purpose != "link":
        raise ConfigurationError(
            f"'under' requires an ontology link source, "
            f"not {subquery.source_name!r}"
        )
    node: LogicalNode = Scan(
        source_name=subquery.source_name, purpose=subquery.purpose
    )
    if plain:
        node = Filter(child=node, conditions=tuple(plain))
    if closure:
        node = ClosureFilter(child=node, conditions=tuple(closure))
    return node


# -- rule optimizer -----------------------------------------------------------


#: The named rewrite passes, in application order; one per
#: OptimizerOptions switch.
RULE_NAMES = (
    "predicate_pushdown",
    "link_fetch_pruning",
    "selectivity_ordering",
    "semijoin_anchor",
)


@dataclass(frozen=True)
class RuleRecord:
    """One rule's outcome: whether it rewrote the tree, and why."""

    rule: str
    fired: bool
    reason: str

    def render(self) -> str:
        status = "fired" if self.fired else "skipped"
        return f"{self.rule}: {status} — {self.reason}"


@dataclass(frozen=True)
class RuleReport:
    """Every rule's record for one optimization, in pass order."""

    records: Tuple[RuleRecord, ...] = ()

    def fired(self) -> Tuple[str, ...]:
        return tuple(r.rule for r in self.records if r.fired)

    def skipped(self) -> Tuple[str, ...]:
        return tuple(r.rule for r in self.records if not r.fired)

    def record(self, rule: str) -> RuleRecord:
        for entry in self.records:
            if entry.rule == rule:
                return entry
        raise KeyError(rule)

    def render(self) -> str:
        lines = ["optimizer rules:"]
        lines.extend(f"  {entry.render()}" for entry in self.records)
        return "\n".join(lines)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [
            {"rule": r.rule, "fired": r.fired, "reason": r.reason}
            for r in self.records
        ]


def _rewrite(
    node: LogicalNode, fn: Callable[[LogicalNode], LogicalNode]
) -> LogicalNode:
    """Bottom-up structural rewrite: rebuild children first, then map
    ``fn`` over the (re-built) node."""
    if isinstance(node, (Filter, ClosureFilter, Reconcile, Enrich, Project)):
        node = replace(node, child=_rewrite(node.child, fn))
    elif isinstance(node, (SemiJoin, AntiJoin)):
        node = replace(
            node,
            left=_rewrite(node.left, fn),
            right=_rewrite(node.right, fn),
        )
    return fn(node)


def _join_chain(
    node: LogicalNode,
) -> Tuple[LogicalNode, List[LogicalNode]]:
    """``(anchor subtree, join layers deepest-first)`` of a left-deep
    join chain (layer order == decomposition order before the ordering
    rule, selectivity order after it)."""
    layers: List[LogicalNode] = []
    while isinstance(node, (SemiJoin, AntiJoin)):
        layers.append(node)
        node = node.left
    layers.reverse()
    return node, layers


def _rebuild_chain(
    base: LogicalNode, layers: Sequence[LogicalNode]
) -> LogicalNode:
    node = base
    for layer in layers:
        node = replace(layer, left=node)
    return node


def _subtree_scan(node: LogicalNode) -> Scan:
    """The Scan leaf under a Filter/ClosureFilter stack."""
    while isinstance(node, (Filter, ClosureFilter)):
        node = node.child
    if not isinstance(node, Scan):
        raise ConfigurationError(
            "malformed logical plan: expected a Scan leaf, found "
            f"{type(node).__name__}"
        )
    return node


def _replace_scan(node: LogicalNode, scan: Scan) -> LogicalNode:
    """The same Filter/ClosureFilter stack over a replacement Scan."""
    if isinstance(node, (Filter, ClosureFilter)):
        return replace(node, child=_replace_scan(node.child, scan))
    return scan


#: Rough selectivity guesses per operator, used only for ordering and
#: cost estimates (never correctness).
_SELECTIVITY = {
    "=": 0.05,
    "!=": 0.95,
    "<": 0.4,
    "<=": 0.4,
    ">": 0.4,
    ">=": 0.4,
    "like": 0.2,
    "contains": 0.25,
    # Batched key lookup: a handful of needles out of the extent.
    "in": 0.1,
}


def _estimate_rows(wrapper: WrapperLike, pushed: Conditions) -> int:
    from repro.oem.types import OEMType

    specs = wrapper.field_specs()
    rows = float(wrapper.count())
    for label, op, _value in pushed:
        selectivity = _SELECTIVITY.get(op, 0.5)
        # Equality on a boolean field splits the extent, it does not
        # pick a needle out of it.
        if op == "=" and label in specs and (
            specs[label][1] is OEMType.BOOLEAN
        ):
            selectivity = 0.5
        rows *= selectivity
    return max(1, int(round(rows)))


class RuleOptimizer:
    """Rewrite a logical plan via the named passes of
    :data:`RULE_NAMES`, recording per-rule outcomes.

    Every rule is a pure tree-to-tree function (frozen nodes,
    ``dataclasses.replace`` rewrites); a disabled or inapplicable rule
    leaves the tree untouched and records why it was skipped.
    """

    def __init__(
        self,
        wrappers: Mapping[str, WrapperLike],
        options: Optional[OptimizerOptions] = None,
    ) -> None:
        self.wrappers = wrappers
        self.options = options or OptimizerOptions()

    def optimize(
        self, plan: LogicalPlan
    ) -> Tuple[LogicalPlan, RuleReport]:
        records: List[RuleRecord] = []
        root = plan.root
        for rule in (
            self._predicate_pushdown,
            self._link_fetch_pruning,
            self._selectivity_ordering,
            self._semijoin_anchor,
        ):
            root, record = rule(root)
            records.append(record)
        return LogicalPlan(root=root), RuleReport(records=tuple(records))

    # -- rule: predicate pushdown --------------------------------------------

    def _predicate_pushdown(
        self, root: LogicalNode
    ) -> Tuple[LogicalNode, RuleRecord]:
        name = "predicate_pushdown"
        if not self.options.enable_pushdown:
            return root, RuleRecord(
                name, False, "disabled by OptimizerOptions.enable_pushdown"
            )
        moved = 0

        def push(node: LogicalNode) -> LogicalNode:
            nonlocal moved
            if not (
                isinstance(node, Filter) and isinstance(node.child, Scan)
            ):
                return node
            wrapper = self.wrappers[node.child.source_name]
            pushed: List[ConditionTriple] = []
            residual: List[ConditionTriple] = []
            for label, op, value in node.conditions:
                if wrapper.supports(label, op):
                    pushed.append((label, op, value))
                else:
                    residual.append((label, op, value))
            if not pushed:
                return node
            moved += len(pushed)
            scan = replace(
                node.child, pushed=node.child.pushed + tuple(pushed)
            )
            if residual:
                return replace(
                    node, child=scan, conditions=tuple(residual)
                )
            return scan

        rewritten = _rewrite(root, push)
        if moved:
            return rewritten, RuleRecord(
                name, True,
                f"pushed {moved} condition(s) into source scans",
            )
        return rewritten, RuleRecord(
            name, False, "no condition is natively evaluable at its source"
        )

    # -- rule: link-fetch pruning --------------------------------------------

    def _link_fetch_pruning(
        self, root: LogicalNode
    ) -> Tuple[LogicalNode, RuleRecord]:
        name = "link_fetch_pruning"
        if not self.options.enable_pruning:
            return root, RuleRecord(
                name, False, "disabled by OptimizerOptions.enable_pruning"
            )
        pruned = 0

        def prune(node: LogicalNode) -> LogicalNode:
            nonlocal pruned
            if not isinstance(node, (SemiJoin, AntiJoin)):
                return node
            right = node.right
            # An unconditional link (a bare Scan: nothing was pushed,
            # nothing is residual, no closure) needs no fetch — unless
            # the join runs through symbols or the linked source's own
            # back-references, which only its records can answer.
            if (
                isinstance(right, Scan)
                and not right.pushed
                and not node.link.symbol_join
                and not node.link.reverse_join
            ):
                pruned += 1
                return replace(node, right=replace(right, pruned=True))
            return node

        rewritten = _rewrite(root, prune)
        if pruned:
            return rewritten, RuleRecord(
                name, True,
                f"{pruned} unconditional link fetch(es) answered from "
                "anchor link ids",
            )
        return rewritten, RuleRecord(
            name, False,
            "every link step is conditioned or joins through "
            "symbols/back-references",
        )

    # -- cardinality annotation (always on; feeds ordering + semijoin) -------

    def _estimate(self, root: LogicalNode) -> LogicalNode:
        """Annotate every Scan with its estimated row count (pruned
        scans cost nothing; each closure predicate above a scan keeps
        roughly a tenth of it)."""

        def annotate(node: LogicalNode, closure_count: int) -> LogicalNode:
            if isinstance(node, ClosureFilter):
                return replace(
                    node,
                    child=annotate(
                        node.child, closure_count + len(node.conditions)
                    ),
                )
            if isinstance(node, Filter):
                return replace(
                    node, child=annotate(node.child, closure_count)
                )
            if isinstance(node, (Reconcile, Enrich, Project)):
                return replace(node, child=annotate(node.child, 0))
            if isinstance(node, (SemiJoin, AntiJoin)):
                return replace(
                    node,
                    left=annotate(node.left, 0),
                    right=annotate(node.right, 0),
                )
            if isinstance(node, Scan):
                if node.pruned:
                    return replace(node, estimated_rows=0)
                scale = 0.1 ** closure_count
                rows = _estimate_rows(
                    self.wrappers[node.source_name], node.pushed
                )
                return replace(
                    node,
                    estimated_rows=max(1, int(round(rows * scale))),
                )
            return node

        return annotate(root, 0)

    # -- rule: selectivity ordering ------------------------------------------

    def _selectivity_ordering(
        self, root: LogicalNode
    ) -> Tuple[LogicalNode, RuleRecord]:
        name = "selectivity_ordering"
        # Estimation is not itself a rule — ordering and semijoin both
        # need row estimates even when ordering is ablated off.
        root = self._estimate(root)
        if not self.options.enable_ordering:
            return root, RuleRecord(
                name, False, "disabled by OptimizerOptions.enable_ordering"
            )
        changed = False

        def order(node: LogicalNode) -> LogicalNode:
            nonlocal changed
            if not isinstance(node, Reconcile):
                return node
            base, layers = _join_chain(node.child)
            ordered = sorted(
                layers,
                key=lambda layer: _subtree_scan(
                    layer.children()[1]
                ).estimated_rows,
            )
            if ordered == layers:
                return node
            changed = True
            return replace(node, child=_rebuild_chain(base, ordered))

        rewritten = _rewrite(root, order)
        if changed:
            return rewritten, RuleRecord(
                name, True, "link joins reordered most-selective first"
            )
        return rewritten, RuleRecord(
            name, False, "link joins already run most-selective first"
        )

    # -- rule: semijoin anchor selection --------------------------------------

    def _semijoin_anchor(
        self, root: LogicalNode
    ) -> Tuple[LogicalNode, RuleRecord]:
        name = "semijoin_anchor"
        if not self.options.enable_semijoin:
            return root, RuleRecord(
                name, False, "disabled by OptimizerOptions.enable_semijoin"
            )
        spec: Optional[SemiJoinSpec] = None

        def choose(node: LogicalNode) -> LogicalNode:
            nonlocal spec
            if not isinstance(node, Reconcile):
                return node
            base, layers = _join_chain(node.child)
            anchor_scan = _subtree_scan(base)
            anchor_wrapper = self.wrappers[anchor_scan.source_name]
            threshold = self.options.semijoin_selectivity_threshold
            candidates: List[Tuple[Scan, SemiJoinSpec]] = []
            for layer in layers:
                if not isinstance(layer, SemiJoin):
                    continue  # exclude-links cannot drive the anchor
                scan = _subtree_scan(layer.right)
                via_label = layer.via_anchor_label
                if (
                    scan.pruned
                    or layer.link.symbol_join
                    or via_label is None
                    or not anchor_wrapper.supports(via_label, "=")
                    or scan.estimated_rows
                    >= anchor_scan.estimated_rows * threshold
                ):
                    continue
                candidates.append(
                    (scan,
                     SemiJoinSpec(layer.link.source_name, via_label))
                )
            if not candidates:
                return node
            driver_scan, chosen = min(
                candidates, key=lambda pair: pair[0].estimated_rows
            )
            spec = chosen
            # Rough estimate: each selective link id pulls in a couple
            # of anchors; far below a full anchor scan by construction.
            new_anchor = replace(
                anchor_scan,
                semijoin=chosen,
                estimated_rows=min(
                    anchor_scan.estimated_rows,
                    driver_scan.estimated_rows * 2,
                ),
            )
            return replace(
                node,
                child=_rebuild_chain(
                    _replace_scan(base, new_anchor), layers
                ),
            )

        rewritten = _rewrite(root, choose)
        if spec is not None:
            return rewritten, RuleRecord(
                name, True,
                f"anchor fetched by {spec.via_anchor_label} ids from "
                f"{spec.driver_source}",
            )
        return rewritten, RuleRecord(
            name, False,
            "no include-link is selective enough to drive the anchor",
        )


# -- physical plan ------------------------------------------------------------


@dataclass(frozen=True)
class FetchStage:
    """One executable source access of the physical DAG.

    Carries everything the executor needs — nothing is re-inferred at
    run time: the pushed/residual/closure condition split, the link
    join shape, the pruning decision and (anchor only) the semijoin
    driver.  Frozen like the logical nodes; the executor only reads.
    """

    source_name: str
    purpose: str  # "anchor" | "link"
    pushed: Conditions = ()
    residual: Conditions = ()
    #: Ontology-closure conditions (op "under"): evaluated by the
    #: mediator against the wrapper's transitive-descendant closure.
    closure: Conditions = ()
    link: Optional[LinkLike] = None
    #: Pruned stages perform no fetch; the anchor's ids decide.
    pruned: bool = False
    estimated_rows: int = 0
    #: Anchor only: (driving link source, anchor via-label) when the
    #: semijoin strategy retrieves the anchor by link-id equality.
    semijoin: Optional[SemiJoinSpec] = None
    #: Link only: the anchor's local label carrying this link's ids.
    via_anchor_label: Optional[str] = None

    def render(self) -> str:
        parts = [f"fetch {self.source_name} ({self.purpose})"]
        if self.semijoin is not None:
            parts.append(
                f"SEMIJOIN: anchor fetched by {self.semijoin[1]} ids "
                f"from {self.semijoin[0]}"
            )
        if self.pruned:
            parts.append("PRUNED: answered from anchor link ids")
        elif self.semijoin is None or self.purpose != "anchor":
            pushed = _render_conditions(self.pushed) or "true"
            parts.append(f"push down: {pushed}")
            if self.residual:
                parts.append(
                    "residual at mediator: "
                    + _render_conditions(self.residual)
                )
            parts.append(f"~{self.estimated_rows} rows")
        return " | ".join(parts)

    def fingerprint(
        self,
        position: int,
        version: int,
        degraded: Optional[bool] = None,
    ) -> Tuple[Any, ...]:
        """The stage's stable content-address tuple: every plan input
        that shapes its output (position, source id + version, link
        shape, the condition split).  This is the exact per-step
        encoding the stage artifact keys have always used — the
        pinned-digest test holds it still.

        ``degraded`` (when not ``None``) appends the run's degradation
        flag: the reconcile key includes it because degradation changes
        the stage's semantics; the answer key omits it and instead only
        ever stores clean runs.
        """
        link = self.link
        if link is None:
            raise ValueError(
                "fingerprint() addresses link stages; the anchor is "
                "keyed by its conditions and semijoin spec directly"
            )
        entry: Tuple[Any, ...] = (
            position,
            self.source_name,
            version,
            link.mode,
            link.via,
            bool(link.reverse_join),
            bool(link.symbol_join),
            bool(self.pruned),
            tuple(self.pushed),
            tuple(self.residual),
            tuple(self.closure),
        )
        if degraded is not None:
            entry += (degraded,)
        return entry


@dataclass(frozen=True)
class StageNode:
    """One node of the rendered stage DAG."""

    stage_id: str
    kind: str  # "fetch" | "reconcile" | "enrich" | "answer"
    detail: str


@dataclass(frozen=True)
class PhysicalPlan:
    """The executable stage DAG one query lowers to.

    Keeps the classic plan surface (``anchor``, ``link_steps``,
    ``estimated_cost``, :meth:`steps`, :meth:`explain`) that the
    executor, benchmarks and tests consume, and adds the IR context:
    the optimized :attr:`logical` tree, the per-rule :attr:`rules`
    report, the semijoin :attr:`driver_index` (so the executor never
    re-infers the driving step) and the stage DAG
    (:meth:`stages`/:meth:`edges`/:meth:`render_dag`).
    """

    anchor: FetchStage
    link_steps: Tuple[FetchStage, ...] = ()
    estimated_cost: float = 0.0
    logical: Optional[LogicalPlan] = None
    rules: RuleReport = RuleReport()
    #: Index into ``link_steps`` of the semijoin driving step, when
    #: the anchor carries a semijoin spec.
    driver_index: Optional[int] = None
    #: Whether execution crosses the wrapper boundary in columnar
    #: RecordBatch replies (advisory: the executor binds the actual
    #: mode at run time).
    columnar: bool = True

    def steps(self) -> List[FetchStage]:
        return [self.anchor] + list(self.link_steps)

    def explain(self) -> str:
        lines = [
            f"execution plan (estimated cost {self.estimated_cost:.0f}):"
        ]
        lines.extend(
            f"  {index + 1}. {step.render()}"
            for index, step in enumerate(self.steps())
        )
        return "\n".join(lines)

    # -- the stage DAG --------------------------------------------------------

    def _dag(
        self,
    ) -> Tuple[Tuple[StageNode, ...], Tuple[Tuple[str, str], ...]]:
        nodes: List[StageNode] = []
        edges: List[Tuple[str, str]] = []
        fetch_count = 1 + len(self.link_steps)
        reconcile_id = f"s{fetch_count}"
        enrich_id = f"s{fetch_count + 1}"
        answer_id = f"s{fetch_count + 2}"
        anchor_detail = f"fetch {self.anchor.source_name} (anchor)"
        if self.anchor.semijoin is not None:
            anchor_detail += " [semijoin]"
        nodes.append(StageNode("s0", "fetch", anchor_detail))
        edges.append(("s0", reconcile_id))
        for index, step in enumerate(self.link_steps):
            stage_id = f"s{index + 1}"
            detail = f"fetch {step.source_name} (link)"
            if step.pruned:
                detail = f"prune {step.source_name} (link: no fetch)"
            nodes.append(StageNode(stage_id, "fetch", detail))
            edges.append((stage_id, reconcile_id))
            if self.driver_index == index:
                edges.append((stage_id, "s0"))
        nodes.append(
            StageNode(reconcile_id, "reconcile", "reconcile + join links")
        )
        nodes.append(
            StageNode(enrich_id, "enrich", "enrich linked detail")
        )
        nodes.append(
            StageNode(answer_id, "answer", "integrated OEM answer")
        )
        edges.append((reconcile_id, enrich_id))
        edges.append((enrich_id, answer_id))
        return tuple(nodes), tuple(edges)

    def stages(self) -> Tuple[StageNode, ...]:
        return self._dag()[0]

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return self._dag()[1]

    def render_dag(self) -> str:
        nodes, edges = self._dag()
        successors: Dict[str, List[str]] = {}
        for source, target in edges:
            successors.setdefault(source, []).append(target)
        lines = ["physical stage DAG:"]
        for node in nodes:
            arrow = ""
            if node.stage_id in successors:
                arrow = " -> " + ", ".join(successors[node.stage_id])
            lines.append(f"  {node.stage_id} {node.detail}{arrow}")
        return "\n".join(lines)

    def describe(self) -> str:
        """The full plan story: logical tree, per-rule report,
        numbered execution steps, stage DAG."""
        sections = []
        if self.logical is not None:
            sections.append(self.logical.render())
        if self.rules.records:
            sections.append(self.rules.render())
        sections.append(self.explain())
        sections.append(self.render_dag())
        return "\n\n".join(sections)

    def to_dict(self) -> Dict[str, Any]:
        nodes, edges = self._dag()
        return {
            "estimated_cost": self.estimated_cost,
            "columnar": self.columnar,
            "logical": (
                None if self.logical is None else self.logical.to_dict()
            ),
            "rules": self.rules.to_dict(),
            "steps": [_stage_to_dict(step) for step in self.steps()],
            "stages": [
                {"id": n.stage_id, "kind": n.kind, "detail": n.detail}
                for n in nodes
            ],
            "edges": [list(edge) for edge in edges],
        }


def _stage_to_dict(stage: FetchStage) -> Dict[str, Any]:
    link = stage.link
    return {
        "source": stage.source_name,
        "purpose": stage.purpose,
        "pushed": [list(triple) for triple in stage.pushed],
        "residual": [list(triple) for triple in stage.residual],
        "closure": [list(triple) for triple in stage.closure],
        "pruned": stage.pruned,
        "estimated_rows": stage.estimated_rows,
        "semijoin": None if stage.semijoin is None else list(stage.semijoin),
        "via_anchor_label": stage.via_anchor_label,
        "link": (
            None
            if link is None
            else {
                "source": link.source_name,
                "mode": link.mode,
                "via": link.via,
                "symbol_join": bool(link.symbol_join),
                "reverse_join": bool(link.reverse_join),
            }
        ),
    }


class PhysicalPlanner:
    """Lower an optimized logical tree to the executable stage DAG.

    Lowering is shape-preserving: one FetchStage per Scan (anchor
    first, link stages in join-chain order), residual/closure
    conditions read off the Filter/ClosureFilter stack above each
    scan.  Validation that needs wrapper capabilities happens here —
    an ``under`` predicate against a source without a descendant
    closure is a planning error, not an execution one.
    """

    def __init__(
        self,
        wrappers: Mapping[str, WrapperLike],
        columnar: bool = True,
    ) -> None:
        self.wrappers = wrappers
        self.columnar = columnar

    def lower(
        self,
        logical: LogicalPlan,
        rules: Optional[RuleReport] = None,
    ) -> PhysicalPlan:
        node = logical.root
        select: Tuple[str, ...] = ()
        if isinstance(node, Project):
            select = node.select
            node = node.child
        if isinstance(node, Enrich):
            node = node.child
        if isinstance(node, Reconcile):
            node = node.child
        base, layers = _join_chain(node)

        anchor_scan, residual, closure = self._subtree_parts(base)
        self._validate_closure(anchor_scan, closure)
        anchor = FetchStage(
            source_name=anchor_scan.source_name,
            purpose=anchor_scan.purpose,
            pushed=anchor_scan.pushed,
            residual=residual,
            closure=closure,
            estimated_rows=anchor_scan.estimated_rows,
            semijoin=anchor_scan.semijoin,
        )

        link_steps: List[FetchStage] = []
        for layer in layers:
            if not isinstance(layer, (SemiJoin, AntiJoin)):
                raise ConfigurationError(
                    "malformed logical plan: expected a join layer, "
                    f"found {type(layer).__name__}"
                )
            scan, residual, closure = self._subtree_parts(layer.right)
            self._validate_closure(scan, closure)
            link_steps.append(
                FetchStage(
                    source_name=scan.source_name,
                    purpose=scan.purpose,
                    pushed=scan.pushed,
                    residual=residual,
                    closure=closure,
                    link=layer.link,
                    pruned=scan.pruned,
                    estimated_rows=scan.estimated_rows,
                    via_anchor_label=layer.via_anchor_label,
                )
            )

        driver_index = self._driver_index(anchor, link_steps)
        cost = float(anchor.estimated_rows) + sum(
            step.estimated_rows for step in link_steps
        )
        del select  # projection is applied by the answer stage itself
        return PhysicalPlan(
            anchor=anchor,
            link_steps=tuple(link_steps),
            estimated_cost=cost,
            logical=logical,
            rules=rules if rules is not None else RuleReport(),
            driver_index=driver_index,
            columnar=self.columnar,
        )

    @staticmethod
    def _subtree_parts(
        node: LogicalNode,
    ) -> Tuple[Scan, Conditions, Conditions]:
        """(scan, residual conditions, closure conditions) of one
        Scan/Filter/ClosureFilter stack."""
        residual: List[ConditionTriple] = []
        closure: List[ConditionTriple] = []
        while isinstance(node, (Filter, ClosureFilter)):
            if isinstance(node, ClosureFilter):
                closure.extend(node.conditions)
            else:
                residual.extend(node.conditions)
            node = node.child
        if not isinstance(node, Scan):
            raise ConfigurationError(
                "malformed logical plan: expected a Scan leaf, found "
                f"{type(node).__name__}"
            )
        return node, tuple(residual), tuple(closure)

    def _validate_closure(self, scan: Scan, closure: Conditions) -> None:
        """Transitive-closure predicates never run natively (the flat
        sources have no closure capability) and only make sense against
        an ontology-shaped wrapper."""
        if not closure:
            return
        wrapper = self.wrappers[scan.source_name]
        if scan.purpose != "link" or not hasattr(wrapper, "descendants"):
            raise ConfigurationError(
                f"'under' requires an ontology link source, "
                f"not {scan.source_name!r}"
            )

    @staticmethod
    def _driver_index(
        anchor: FetchStage, link_steps: Sequence[FetchStage]
    ) -> Optional[int]:
        if anchor.semijoin is None:
            return None
        driver_source, via_label = anchor.semijoin
        for index, step in enumerate(link_steps):
            if (
                step.source_name == driver_source
                and step.via_anchor_label == via_label
            ):
                return index
        raise ConfigurationError(
            f"semijoin driver {driver_source!r} is not among the "
            "plan's link steps"
        )
