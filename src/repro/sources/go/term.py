"""The GO term model."""

import re
from dataclasses import dataclass, field

from repro.util.errors import DataFormatError

#: The three GO namespaces (aspect branches).
NAMESPACES = (
    "molecular_function",
    "biological_process",
    "cellular_component",
)

_GO_ID = re.compile(r"^GO:\d{7}$")


@dataclass
class GoTerm:
    """One Gene Ontology term.

    Attributes
    ----------
    go_id:
        Accession of the form ``GO:0003700``.
    name:
        Human-readable term name.
    namespace:
        One of :data:`NAMESPACES`.
    definition:
        Free-text definition.
    is_a:
        Parent term accessions (empty only for namespace roots).
    synonyms:
        Alternate names.
    obsolete:
        Obsolete terms stay in the file but carry no annotations.
    """

    go_id: str
    name: str
    namespace: str
    definition: str = ""
    is_a: list = field(default_factory=list)
    synonyms: list = field(default_factory=list)
    obsolete: bool = False

    def __post_init__(self):
        if not _GO_ID.match(self.go_id):
            raise DataFormatError(
                f"malformed GO accession {self.go_id!r} "
                "(expected GO: + 7 digits)"
            )
        if self.namespace not in NAMESPACES:
            raise DataFormatError(
                f"unknown GO namespace {self.namespace!r} for {self.go_id}"
            )
        if not self.name:
            raise DataFormatError(f"term {self.go_id} has an empty name")

    @property
    def is_root(self):
        return not self.is_a

    def web_link(self):
        """The term's web link for interactive navigation."""
        return f"http://godatabase.org/cgi-bin/go.cgi?query={self.go_id}"

    def as_dict(self):
        """Plain-dict view for the :class:`~repro.sources.base.DataSource`
        contract."""
        return {
            "GoID": self.go_id,
            "Name": self.name,
            "Namespace": self.namespace,
            "Definition": self.definition,
            "IsA": list(self.is_a),
            "Synonyms": list(self.synonyms),
            "Obsolete": self.obsolete,
        }


def make_go_id(number):
    """Format an integer as a GO accession (``42`` -> ``GO:0000042``)."""
    if number < 0 or number > 9999999:
        raise DataFormatError(f"GO id number out of range: {number}")
    return f"GO:{number:07d}"
