"""Gene Ontology: a DAG-shaped ontology source (source #2).

The Gene Ontology distributes terms in the OBO flat format; terms form
a rooted directed acyclic graph per namespace via ``is_a``
relationships.  This subpackage reproduces the term model, the OBO
format, a DAG store with ancestor/descendant closure, and a seeded
generator.
"""

from repro.sources.go.generator import GoGenerator
from repro.sources.go.obo import parse_obo, write_obo
from repro.sources.go.ontology import GoOntology
from repro.sources.go.term import NAMESPACES, GoTerm

__all__ = [
    "GoGenerator",
    "GoOntology",
    "GoTerm",
    "NAMESPACES",
    "parse_obo",
    "write_obo",
]
