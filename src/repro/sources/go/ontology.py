"""The GO ontology store: a rooted DAG per namespace.

Stores terms indexed by accession, maintains the child index, computes
transitive ancestor/descendant closures (memoized), checks acyclicity,
and exposes the :class:`~repro.sources.base.DataSource` contract with
graph-flavoured native capabilities (ancestor-of is *not* native — the
real GO flat files could only be grepped, so closure queries must run
at the wrapper/mediator, which the optimizer bench exercises).
"""

from repro.sources.base import DataSource
from repro.sources.go.obo import parse_obo, write_obo
from repro.util.errors import DataFormatError


class GoOntology(DataSource):
    """In-memory OBO-backed ontology of :class:`GoTerm`."""

    name = "GO"

    _FIELDS = (
        "GoID",
        "Name",
        "Namespace",
        "Definition",
        "IsA",
        "Synonyms",
        "Obsolete",
    )

    _CAPABILITIES = frozenset(
        {
            ("GoID", "="),
            ("Name", "="),
            ("Name", "like"),
            ("Name", "contains"),
            ("Namespace", "="),
            ("IsA", "="),
            ("Obsolete", "="),
        }
    )

    #: Hash-indexed fields: accession (the mediator's batched link
    #: fetches probe it), names, namespaces, and is_a back-references.
    #: ``Obsolete`` is deliberately unindexed — a boolean splits the
    #: extent in half, so the scan is as good as the index.
    _INDEXED_FIELDS = ("GoID", "Name", "Namespace", "IsA")

    def indexed_fields(self):
        return self._INDEXED_FIELDS

    def __init__(self, terms=(), index_state=None):
        self._terms = {}
        self._children = {}
        self._version = 0
        self._ancestor_cache = {}
        for term in terms:
            self.add(term)
        self._adopt_or_warn(index_state)

    # -- DataSource contract ---------------------------------------------------

    def fields(self):
        return self._FIELDS

    def capabilities(self):
        return self._CAPABILITIES

    def records(self):
        return [self._terms[key].as_dict() for key in sorted(self._terms)]

    def count(self):
        return len(self._terms)

    @property
    def version(self):
        return self._version

    # -- store operations ---------------------------------------------------------

    def add(self, term):
        """Insert a term; duplicate accessions are rejected.

        Parents may be added after children (OBO files are unordered);
        referential integrity is checked by :meth:`validate`.
        """
        if term.go_id in self._terms:
            raise DataFormatError(
                f"duplicate GO accession {term.go_id}", source_name=self.name
            )
        self._terms[term.go_id] = term
        for parent in term.is_a:
            self._children.setdefault(parent, []).append(term.go_id)
        self._version += 1
        self._ancestor_cache.clear()

    def get(self, go_id):
        """The term with accession ``go_id``, or ``None``."""
        return self._terms.get(go_id)

    def all_terms(self):
        return [self._terms[key] for key in sorted(self._terms)]

    def term_ids(self):
        return sorted(self._terms)

    def roots(self, namespace=None):
        """Terms without parents, optionally within one namespace."""
        return [
            term
            for term in self.all_terms()
            if term.is_root
            and (namespace is None or term.namespace == namespace)
        ]

    # -- graph queries ----------------------------------------------------------

    def parents(self, go_id):
        term = self._require(go_id)
        return [self._require(parent) for parent in term.is_a]

    def children(self, go_id):
        self._require(go_id)
        return [
            self._terms[child] for child in self._children.get(go_id, ())
        ]

    def ancestors(self, go_id):
        """All transitive ancestors' accessions (excluding the term).

        Memoized bottom-up; the memo is shared state read by federated
        worker threads, so it is maintained under the same per-source
        fetch mutex as the equality indexes.
        """
        with self._fetch_mutex():
            return set(self._ancestors_locked(go_id))

    def _ancestors_locked(self, go_id):
        cached = self._ancestor_cache.get(go_id)
        if cached is not None:
            return cached
        self._require(go_id)
        # Iterative post-order over the is_a DAG: a term's closure is
        # computed only after all its parents' closures are memoized,
        # so deep ontologies never hit the recursion limit.
        stack = [(go_id, False)]
        in_progress = set()
        while stack:
            node, expanded = stack.pop()
            if node in self._ancestor_cache:
                continue
            term = self._require(node)
            if expanded:
                in_progress.discard(node)
                closure = set()
                for parent in term.is_a:
                    closure.add(parent)
                    closure.update(self._ancestor_cache[parent])
                self._ancestor_cache[node] = frozenset(closure)
            else:
                if node in in_progress:
                    raise DataFormatError(
                        f"is_a cycle through {node}", source_name=self.name
                    )
                in_progress.add(node)
                stack.append((node, True))
                for parent in term.is_a:
                    if parent not in self._ancestor_cache:
                        stack.append((parent, False))
        return self._ancestor_cache[go_id]

    def descendants(self, go_id):
        """All transitive descendants' accessions (excluding the term)."""
        self._require(go_id)
        closure = set()
        stack = list(self._children.get(go_id, ()))
        while stack:
            child = stack.pop()
            if child in closure:
                continue
            closure.add(child)
            stack.extend(self._children.get(child, ()))
        return closure

    def is_ancestor(self, ancestor_id, descendant_id):
        """True when ``ancestor_id`` is a transitive parent of
        ``descendant_id``."""
        return ancestor_id in self.ancestors(descendant_id)

    def depth(self, go_id):
        """Shortest is_a distance to a namespace root (root depth 0)."""
        term = self._require(go_id)
        if term.is_root:
            return 0
        return 1 + min(self.depth(parent) for parent in term.is_a)

    def search_by_name(self, needle):
        """Terms whose name or synonym contains ``needle`` (case-folded)."""
        lowered = needle.lower()
        found = []
        for term in self.all_terms():
            names = [term.name] + list(term.synonyms)
            if any(lowered in name.lower() for name in names):
                found.append(term)
        return found

    # -- integrity ----------------------------------------------------------------

    def validate(self):
        """Referential and acyclicity problems as a list of strings."""
        problems = []
        for term in self.all_terms():
            for parent in term.is_a:
                if parent not in self._terms:
                    problems.append(
                        f"{term.go_id} is_a missing term {parent}"
                    )
                elif self._terms[parent].namespace != term.namespace:
                    problems.append(
                        f"{term.go_id} crosses namespaces via is_a {parent}"
                    )
        problems.extend(self._find_cycles())
        return problems

    def _find_cycles(self):
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {go_id: WHITE for go_id in self._terms}
        problems = []

        def visit(go_id, trail):
            color[go_id] = GRAY
            for parent in self._terms[go_id].is_a:
                if parent not in self._terms:
                    continue
                if color[parent] == GRAY:
                    problems.append(
                        "is_a cycle: " + " -> ".join(trail + [parent])
                    )
                elif color[parent] == WHITE:
                    visit(parent, trail + [parent])
            color[go_id] = BLACK

        for go_id in self._terms:
            if color[go_id] == WHITE:
                visit(go_id, [go_id])
        return problems

    def _require(self, go_id):
        term = self._terms.get(go_id)
        if term is None:
            raise DataFormatError(
                f"unknown GO accession {go_id}", source_name=self.name
            )
        return term

    # -- flat-file round trip ---------------------------------------------------

    def dump(self):
        """The ontology as OBO text."""
        return write_obo(self.all_terms())

    @classmethod
    def from_text(cls, text, index_state=None):
        ontology = cls(parse_obo(text), index_state=index_state)
        problems = ontology.validate()
        if problems:
            raise DataFormatError(
                "OBO document is inconsistent: " + "; ".join(problems[:5]),
                source_name=cls.name,
            )
        return ontology
