"""The OBO 1.2 flat format for GO terms.

A minimal but faithful subset of OBO: a header, then ``[Term]`` stanzas
with ``tag: value`` lines::

    format-version: 1.2
    ontology: go

    [Term]
    id: GO:0003700
    name: transcription factor activity
    namespace: molecular_function
    def: "Interacting selectively with DNA."
    synonym: "sequence-specific DNA binding"
    is_a: GO:0003677 ! DNA binding

``is_a`` values may carry the conventional `` ! name`` comment, which
the parser strips.
"""

from repro.sources.go.term import GoTerm
from repro.util.errors import DataFormatError

_SOURCE = "OBO"

_HEADER = "format-version: 1.2\nontology: go\n"


def write_obo(terms):
    """Serialize terms to OBO text (terms in given order)."""
    chunks = [_HEADER]
    for term in terms:
        lines = ["[Term]"]
        lines.append(f"id: {term.go_id}")
        lines.append(f"name: {term.name}")
        lines.append(f"namespace: {term.namespace}")
        if term.definition:
            lines.append(f'def: "{_escape(term.definition)}"')
        for synonym in term.synonyms:
            lines.append(f'synonym: "{_escape(synonym)}"')
        for parent in term.is_a:
            lines.append(f"is_a: {parent}")
        if term.obsolete:
            lines.append("is_obsolete: true")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"


def parse_obo(text):
    """Parse OBO text into a list of :class:`GoTerm`."""
    terms = []
    stanza = None
    stanza_line = None
    in_term_stanza = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("["):
            if stanza is not None:
                terms.append(_finish(stanza, stanza_line))
                stanza = None
            in_term_stanza = line == "[Term]"
            if in_term_stanza:
                stanza = {}
                stanza_line = line_number
            continue
        if stanza is None:
            if in_term_stanza:
                raise DataFormatError(
                    "internal stanza tracking error",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            # Header lines and non-Term stanzas are skipped.
            continue
        if ":" not in line:
            raise DataFormatError(
                f"expected 'tag: value', got {line!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        tag, _, value = line.partition(":")
        _apply(stanza, tag.strip(), value.strip(), line_number)
    if stanza is not None:
        terms.append(_finish(stanza, stanza_line))
    return terms


def _apply(stanza, tag, value, line_number):
    if tag == "id":
        stanza["go_id"] = value
    elif tag == "name":
        stanza["name"] = value
    elif tag == "namespace":
        stanza["namespace"] = value
    elif tag == "def":
        stanza["definition"] = _unquote(value, line_number)
    elif tag == "synonym":
        stanza.setdefault("synonyms", []).append(
            _unquote(value, line_number)
        )
    elif tag == "is_a":
        parent = value.split("!")[0].strip()
        stanza.setdefault("is_a", []).append(parent)
    elif tag == "is_obsolete":
        stanza["obsolete"] = value.lower() == "true"
    # Other OBO tags (xref, relationship, ...) are tolerated silently.


def _finish(stanza, line_number):
    try:
        return GoTerm(**stanza)
    except (TypeError, DataFormatError) as exc:
        raise DataFormatError(
            f"invalid [Term] stanza: {exc}",
            line_number=line_number,
            source_name=_SOURCE,
        ) from exc


def _escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _unquote(value, line_number):
    stripped = value.strip()
    if not stripped.startswith('"'):
        raise DataFormatError(
            f"quoted value expected, got {value!r}",
            line_number=line_number,
            source_name=_SOURCE,
        )
    chars = []
    index = 1
    while index < len(stripped):
        char = stripped[index]
        if char == "\\" and index + 1 < len(stripped):
            chars.append(stripped[index + 1])
            index += 2
            continue
        if char == '"':
            return "".join(chars)
        chars.append(char)
        index += 1
    raise DataFormatError(
        f"unterminated quoted value: {value!r}",
        line_number=line_number,
        source_name=_SOURCE,
    )
