"""Seeded synthetic Gene Ontology data.

Builds a rooted DAG per namespace: each namespace gets one root and a
population of terms whose parents are drawn from earlier terms of the
same namespace (guaranteeing acyclicity by construction), with a small
fraction of multi-parent terms so the DAG is not a tree.
"""

from repro.sources.go.term import NAMESPACES, GoTerm, make_go_id
from repro.util.rng import DeterministicRng

_ROOT_NAMES = {
    "molecular_function": "molecular_function",
    "biological_process": "biological_process",
    "cellular_component": "cellular_component",
}

_NAME_HEADS = (
    "transcription factor",
    "kinase",
    "receptor",
    "transporter",
    "hydrolase",
    "ligase",
    "oxidoreductase",
    "DNA binding",
    "RNA binding",
    "signal transducer",
    "structural",
    "chaperone",
)

_NAME_TAILS = (
    "activity",
    "regulation",
    "binding",
    "complex",
    "process",
    "pathway",
    "assembly",
    "transport",
    "localization",
    "catabolism",
)

_DEF_WORDS = (
    "catalysis",
    "of",
    "the",
    "selective",
    "interaction",
    "with",
    "a",
    "specific",
    "molecule",
    "or",
    "complex",
    "enabling",
    "downstream",
    "signaling",
    "events",
)


class GoGenerator:
    """Generate a synthetic :class:`GoTerm` population forming a DAG."""

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else DeterministicRng(0)

    def generate(self, count, multi_parent_rate=0.2, obsolete_rate=0.03):
        """``count`` terms split across the three namespaces.

        The first three accessions are the namespace roots.  Every
        non-root term has 1 parent (or 2 with ``multi_parent_rate``)
        drawn from earlier same-namespace terms, so is_a edges always
        point to lower accession numbers — acyclic by construction.
        """
        terms = []
        per_namespace = {namespace: [] for namespace in NAMESPACES}
        next_number = 1
        for namespace in NAMESPACES:
            go_id = make_go_id(next_number)
            next_number += 1
            root = GoTerm(
                go_id=go_id,
                name=_ROOT_NAMES[namespace],
                namespace=namespace,
                definition=f"Root of the {namespace} branch.",
            )
            terms.append(root)
            per_namespace[namespace].append(go_id)
        remaining = max(0, count - len(NAMESPACES))
        for _ in range(remaining):
            namespace = self._rng.choice(NAMESPACES)
            pool = per_namespace[namespace]
            parents = [self._rng.choice(pool)]
            if len(pool) > 1 and self._rng.bernoulli(multi_parent_rate):
                second = self._rng.choice(pool)
                if second not in parents:
                    parents.append(second)
            go_id = make_go_id(next_number)
            next_number += 1
            term = GoTerm(
                go_id=go_id,
                name=self._term_name(),
                namespace=namespace,
                definition=self._rng.sentence(_DEF_WORDS),
                is_a=parents,
                synonyms=self._synonyms(),
                obsolete=self._rng.bernoulli(obsolete_rate),
            )
            terms.append(term)
            pool.append(go_id)
        return terms

    def _term_name(self):
        head = self._rng.choice(_NAME_HEADS)
        tail = self._rng.choice(_NAME_TAILS)
        if self._rng.bernoulli(0.3):
            qualifier = self._rng.choice(["positive", "negative", "nuclear"])
            return f"{qualifier} {head} {tail}"
        return f"{head} {tail}"

    def _synonyms(self):
        if self._rng.bernoulli(0.25):
            return [self._term_name()]
        return []
