"""Heterogeneous annotation data sources.

The paper experiments with three public annotation sources — LocusLink,
GO, and OMIM (section 4.2) — each with *"their own storage structure
and implementation"* (section 1).  This package reproduces that
heterogeneity with three deliberately different substrates:

- :mod:`repro.sources.locuslink` — LL_tmpl-style flat records keyed by
  integer LocusID;
- :mod:`repro.sources.go` — an OBO-style ontology whose terms form a
  rooted DAG per namespace;
- :mod:`repro.sources.omim` — ``*FIELD*``-marked text records keyed by
  MIM number and linked to genes by *symbol* (not id), which is what
  forces semantic reconciliation;
- :mod:`repro.sources.pubmedlike` — a fourth, MEDLINE-flavoured source
  used by the extensibility experiment ("a new annotation data source
  should be plugged in as it comes into existence").

:mod:`repro.sources.corpus` builds all of them consistently from one
seed, wiring cross-links and optionally injecting the conflicts the
reconciliation experiment measures.
"""

from repro.sources.base import DataSource, NativeCondition
from repro.sources.batch import RecordBatch
from repro.sources.corpus import AnnotationCorpus, CorpusParameters

__all__ = [
    "AnnotationCorpus",
    "CorpusParameters",
    "DataSource",
    "NativeCondition",
    "RecordBatch",
]
