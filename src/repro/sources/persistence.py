"""Saving and loading federation data as flat files on disk.

Each source persists in *its own* period-accurate format — exactly how
these databases were distributed in 2005: LocusLink as ``LL_tmpl``, GO
as OBO, OMIM as ``omim.txt``, citations as MEDLINE, proteins as
SwissProt DAT.  A ``manifest.json`` records what is present.

This is the bridge between the synthetic corpora and real dumps: a
directory holding genuine (subset) dumps in these formats loads the
same way.
"""

import json
import pathlib

from repro.sources.go.ontology import GoOntology
from repro.sources.locuslink.store import LocusLinkStore
from repro.sources.omim.store import OmimStore
from repro.sources.pubmedlike.store import CitationStore
from repro.sources.swissprotlike.store import ProteinStore
from repro.util.errors import DataFormatError

MANIFEST_NAME = "manifest.json"

#: Source name -> (file name, store class).
_REGISTRY = {
    "LocusLink": ("locuslink.ll_tmpl", LocusLinkStore),
    "GO": ("gene_ontology.obo", GoOntology),
    "OMIM": ("omim.txt", OmimStore),
    "PubMed": ("citations.medline", CitationStore),
    "SwissProt": ("proteins.dat", ProteinStore),
}

#: Load/registration order (the paper's trio first).
SOURCE_ORDER = ("LocusLink", "GO", "OMIM", "PubMed", "SwissProt")


def save_stores(stores, directory, metadata=None):
    """Write each store's flat file plus the manifest.

    ``stores`` is an iterable of the supported store objects; returns
    the manifest dict.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = {"format": "annoda-federation/1", "sources": {}}
    if metadata:
        manifest["metadata"] = dict(metadata)
    for store in stores:
        if store.name not in _REGISTRY:
            raise DataFormatError(
                f"no persistence format registered for {store.name!r}"
            )
        file_name, _store_class = _REGISTRY[store.name]
        (path / file_name).write_text(store.dump(), encoding="utf-8")
        manifest["sources"][store.name] = {
            "file": file_name,
            "records": store.count(),
        }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest


def save_corpus(corpus, directory, citations=None, proteins=None,
                metadata=None):
    """Persist a corpus's three sources (plus optional extras)."""
    stores = list(corpus.sources())
    if citations is not None:
        stores.append(citations)
    if proteins is not None:
        stores.append(proteins)
    combined = {"seed": corpus.seed}
    if metadata:
        combined.update(metadata)
    return save_stores(stores, directory, metadata=combined)


def load_stores(directory):
    """Load every persisted source; returns ``{name: store}``.

    Consistency between manifest and files is enforced: a listed file
    must exist and parse, and its record count must match.
    """
    path = pathlib.Path(directory)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise DataFormatError(
            f"no {MANIFEST_NAME} in {path} - not a federation directory"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"corrupt manifest: {exc}") from exc
    if manifest.get("format") != "annoda-federation/1":
        raise DataFormatError(
            f"unsupported federation format {manifest.get('format')!r}"
        )
    stores = {}
    for name, entry in manifest.get("sources", {}).items():
        if name not in _REGISTRY:
            raise DataFormatError(f"unknown source {name!r} in manifest")
        expected_file, store_class = _REGISTRY[name]
        file_name = entry.get("file", expected_file)
        file_path = path / file_name
        if not file_path.exists():
            raise DataFormatError(
                f"manifest lists {file_name} but the file is missing"
            )
        store = store_class.from_text(
            file_path.read_text(encoding="utf-8")
        )
        if entry.get("records") not in (None, store.count()):
            raise DataFormatError(
                f"{name}: manifest says {entry['records']} records, "
                f"file holds {store.count()}"
            )
        stores[name] = store
    return stores


def load_manifest(directory):
    """The manifest dict of a federation directory."""
    path = pathlib.Path(directory) / MANIFEST_NAME
    return json.loads(path.read_text(encoding="utf-8"))


def wrappers_for(stores):
    """Wrappers for loaded stores, in canonical registration order."""
    from repro.wrappers import (
        GoWrapper,
        LocusLinkWrapper,
        OmimWrapper,
        PubmedLikeWrapper,
        SwissProtLikeWrapper,
    )

    classes = {
        "LocusLink": LocusLinkWrapper,
        "GO": GoWrapper,
        "OMIM": OmimWrapper,
        "PubMed": PubmedLikeWrapper,
        "SwissProt": SwissProtLikeWrapper,
    }
    ordered = []
    for name in SOURCE_ORDER:
        if name in stores:
            ordered.append(classes[name](stores[name]))
    return ordered
