"""Saving and loading federation data as flat files on disk.

Each source persists in *its own* period-accurate format — exactly how
these databases were distributed in 2005: LocusLink as ``LL_tmpl``, GO
as OBO, OMIM as ``omim.txt``, citations as MEDLINE, proteins as
SwissProt DAT.  A ``manifest.json`` records what is present.

This is the bridge between the synthetic corpora and real dumps: a
directory holding genuine (subset) dumps in these formats loads the
same way.

Alongside the flat files the snapshot optionally materializes each
store's **equality-index state** (the warehouse trade: derived
structures persisted next to the data, invalidated by version), so a
cold start answers its first indexed query without any extent scan:

- ``<flat file>.idx`` holds a pickled
  :meth:`~repro.sources.base.DataSource.export_index_state` envelope;
- the manifest's per-source ``index`` entry records the idx file, its
  sha256 ``digest``, the flat file's ``data_digest``, the exporting
  store's ``version`` and the state ``schema`` — the validation key.

``load_stores`` adopts a persisted index only when every key matches
(digests, version, schema, record count); any mismatch or corruption
**warns and falls back to lazy rebuild** — never a wrong answer, never
a crash.  The pickle payload is only deserialized after its digest
gate passes, tying it byte-for-byte to what ``save_stores`` wrote.

Every file is written via temp-file + ``os.replace``, the manifest
last: no reader ever observes a torn file, and a save into a fresh
directory that crashes before the manifest lands never looks like a
snapshot — ``load_stores`` refuses it loudly.  (In-place re-saves are
not directory-atomic; snapshot into a fresh directory to get an
all-or-nothing commit.)
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.sources.base import INDEX_STATE_SCHEMA
from repro.sources.go.ontology import GoOntology
from repro.sources.locuslink.store import LocusLinkStore
from repro.sources.omim.store import OmimStore
from repro.sources.pubmedlike.store import CitationStore
from repro.sources.swissprotlike.store import ProteinStore
from repro.util.errors import DataFormatError

MANIFEST_NAME = "manifest.json"

#: A directory argument: anything pathlib accepts.
PathLike = Union[str, "os.PathLike[str]"]

#: Suffix appended to a source's flat-file name for its index snapshot.
INDEX_SUFFIX = ".idx"

#: Source name -> (file name, store class).
_REGISTRY: Dict[str, Tuple[str, Any]] = {
    "LocusLink": ("locuslink.ll_tmpl", LocusLinkStore),
    "GO": ("gene_ontology.obo", GoOntology),
    "OMIM": ("omim.txt", OmimStore),
    "PubMed": ("citations.medline", CitationStore),
    "SwissProt": ("proteins.dat", ProteinStore),
}

#: Load/registration order (the paper's trio first).
SOURCE_ORDER = ("LocusLink", "GO", "OMIM", "PubMed", "SwissProt")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def write_atomic(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` (bytes) via temp file + rename, so a reader
    never observes a torn file and a crashed writer leaves the
    previous version intact.  Public: the stage artifact store
    (:mod:`repro.mediator.artifacts`) reuses the same discipline."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


#: Back-compat alias (pre-public name).
_write_atomic = write_atomic


def save_stores(
    stores: Iterable[Any],
    directory: PathLike,
    metadata: Optional[Mapping[str, Any]] = None,
    indexes: bool = True,
) -> Dict[str, Any]:
    """Write each store's flat file plus the manifest.

    ``stores`` is an iterable of the supported store objects; returns
    the manifest dict.  With ``indexes`` (the default) each store's
    equality-index state is serialized next to its flat file and keyed
    in the manifest by version + content digests, making a later
    ``load_stores`` cold start cheap.  All writes are atomic and the
    manifest is written last (the commit point).
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {"format": "annoda-federation/1", "sources": {}}
    if metadata:
        manifest["metadata"] = dict(metadata)
    for store in stores:
        if store.name not in _REGISTRY:
            raise DataFormatError(
                f"no persistence format registered for {store.name!r}"
            )
        file_name, _store_class = _REGISTRY[store.name]
        data = store.dump().encode("utf-8")
        _write_atomic(path / file_name, data)
        entry: Dict[str, Any] = {"file": file_name, "records": store.count()}
        if indexes:
            envelope = store.export_index_state()
            blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
            index_name = file_name + INDEX_SUFFIX
            _write_atomic(path / index_name, blob)
            entry["index"] = {
                "file": index_name,
                "schema": envelope["schema"],
                "version": envelope["version"],
                "digest": _sha256(blob),
                "data_digest": _sha256(data),
            }
        manifest["sources"][store.name] = entry
    _write_atomic(
        path / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    return manifest


def save_corpus(
    corpus: Any,
    directory: PathLike,
    citations: Any = None,
    proteins: Any = None,
    metadata: Optional[Mapping[str, Any]] = None,
    indexes: bool = True,
) -> Dict[str, Any]:
    """Persist a corpus's three sources (plus optional extras)."""
    stores = list(corpus.sources())
    if citations is not None:
        stores.append(citations)
    if proteins is not None:
        stores.append(proteins)
    combined: Dict[str, Any] = {"seed": corpus.seed}
    if metadata:
        combined.update(metadata)
    return save_stores(stores, directory, metadata=combined,
                       indexes=indexes)


def load_stores(
    directory: PathLike, adopt_indexes: bool = True
) -> Dict[str, Any]:
    """Load every persisted source; returns ``{name: store}``.

    Consistency between manifest and files is enforced: a listed file
    must exist and parse, and its record count must match.  With
    ``adopt_indexes`` (the default) each source with a valid persisted
    index snapshot adopts it instead of rebuilding lazily; an invalid
    one (stale, truncated, tampered, future schema) emits a
    ``RuntimeWarning`` and the store rebuilds lazily — data loading
    itself is never affected.
    """
    path = pathlib.Path(directory)
    manifest = load_manifest(path)
    if manifest.get("format") != "annoda-federation/1":
        raise DataFormatError(
            f"unsupported federation format {manifest.get('format')!r}"
        )
    stores: Dict[str, Any] = {}
    for name, entry in manifest.get("sources", {}).items():
        if name not in _REGISTRY:
            raise DataFormatError(f"unknown source {name!r} in manifest")
        expected_file, store_class = _REGISTRY[name]
        file_name = entry.get("file", expected_file)
        file_path = path / file_name
        if not file_path.exists():
            raise DataFormatError(
                f"manifest lists {file_name} but the file is missing"
            )
        text = file_path.read_text(encoding="utf-8")
        store = store_class.from_text(text)
        if entry.get("records") not in (None, store.count()):
            raise DataFormatError(
                f"{name}: manifest says {entry['records']} records, "
                f"file holds {store.count()}"
            )
        if adopt_indexes and entry.get("index"):
            _adopt_index(path, name, entry["index"], text, store)
        stores[name] = store
    return stores


def adopt_persisted_indexes(
    directory: PathLike, stores: Mapping[str, Any]
) -> Dict[str, bool]:
    """Adopt persisted index snapshots into already-loaded stores.

    Split out of :func:`load_stores` so cold-start measurement can
    time adoption separately from flat-file parsing.  Returns
    ``{name: adopted}`` for every store the manifest carries an index
    entry for; the same fallback contract applies — a failed adoption
    warns and the store keeps rebuilding lazily.
    """
    path = pathlib.Path(directory)
    manifest = load_manifest(path)
    adopted: Dict[str, bool] = {}
    for name, entry in manifest.get("sources", {}).items():
        store = stores.get(name)
        if store is None or not entry.get("index"):
            continue
        registry_entry = _REGISTRY.get(name)
        expected_file = registry_entry[0] if registry_entry else ""
        file_path = path / entry.get("file", expected_file)
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        adopted[name] = _adopt_index(path, name, entry["index"], text,
                                     store)
    return adopted


def _adopt_index(
    path: pathlib.Path,
    name: str,
    index_entry: Mapping[str, Any],
    text: str,
    store: Any,
) -> bool:
    """Validate one persisted index snapshot against the manifest and
    the flat file actually loaded, then adopt it; returns True on
    adoption, warns and returns False on any mismatch or corruption."""

    def fallback(reason: str) -> bool:
        warnings.warn(
            f"{name}: ignoring persisted index snapshot ({reason}); "
            "indexes will be rebuilt lazily",
            RuntimeWarning,
            stacklevel=4,
        )
        return False

    try:
        schema = index_entry.get("schema")
        if schema != INDEX_STATE_SCHEMA:
            return fallback(f"unsupported index schema {schema!r}")
        index_path = path / index_entry.get("file", "")
        if not index_path.is_file():
            return fallback("index file missing")
        blob = index_path.read_bytes()
    except OSError as exc:
        return fallback(f"cannot read index file: {exc}")
    if _sha256(blob) != index_entry.get("digest"):
        return fallback("index file digest mismatch (truncated or corrupt)")
    if _sha256(text.encode("utf-8")) != index_entry.get("data_digest"):
        return fallback("flat file changed since the snapshot was taken")
    try:
        envelope = pickle.loads(blob)
    except Exception as exc:
        return fallback(f"unreadable index payload: {exc}")
    try:
        version = envelope.get("version")
    except AttributeError:
        return fallback("malformed index payload")
    if version != index_entry.get("version"):
        return fallback("stale index version")
    if not store.adopt_index_state(envelope):
        return fallback("index state does not match the loaded store")
    return True


def load_manifest(directory: PathLike) -> Dict[str, Any]:
    """The manifest dict of a federation directory.

    Raises :class:`DataFormatError` when the manifest is missing or
    unparseable — the directory is not (or no longer) a federation
    snapshot.
    """
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise DataFormatError(
            f"no {MANIFEST_NAME} in {pathlib.Path(directory)} - not a "
            "federation directory"
        )
    try:
        manifest: Dict[str, Any] = json.loads(path.read_text(encoding="utf-8"))
        return manifest
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"corrupt manifest: {exc}") from exc


def wrappers_for(stores: Mapping[str, Any]) -> List[Any]:
    """Wrappers for loaded stores, in canonical registration order."""
    from repro.wrappers import (
        GoWrapper,
        LocusLinkWrapper,
        OmimWrapper,
        PubmedLikeWrapper,
        SwissProtLikeWrapper,
    )

    classes = {
        "LocusLink": LocusLinkWrapper,
        "GO": GoWrapper,
        "OMIM": OmimWrapper,
        "PubMed": PubmedLikeWrapper,
        "SwissProt": SwissProtLikeWrapper,
    }
    ordered: List[Any] = []
    for name in SOURCE_ORDER:
        if name in stores:
            ordered.append(classes[name](stores[name]))
    return ordered
