"""OMIM: text records of heritable disease entries (source #3).

OMIM distributed ``omim.txt``: records delimited by ``*RECORD*`` lines,
fields introduced by ``*FIELD*`` marker lines.  Crucially, OMIM links
to genes by *symbol*, not by LocusID — the representational mismatch
that makes reconciliation necessary.
"""

from repro.sources.omim.format import parse_omim_txt, write_omim_txt
from repro.sources.omim.generator import OmimGenerator
from repro.sources.omim.record import OmimRecord
from repro.sources.omim.store import OmimStore

__all__ = [
    "OmimGenerator",
    "OmimRecord",
    "OmimStore",
    "parse_omim_txt",
    "write_omim_txt",
]
