"""The OMIM record model."""

from dataclasses import dataclass, field

from repro.util.errors import DataFormatError


@dataclass
class OmimRecord:
    """One OMIM disease/phenotype entry.

    Attributes
    ----------
    mim_number:
        Six-digit MIM number, the source's primary key.
    title:
        Entry title (disease name).
    gene_symbols:
        Symbols of associated genes (OMIM's GS field) — note these are
        symbols, not LocusIDs; joining them to LocusLink is the
        mediator's job.
    text:
        Free-text entry body.
    inheritance:
        Inheritance mode (``autosomal dominant`` etc.), may be empty.
    """

    mim_number: int
    title: str
    gene_symbols: list = field(default_factory=list)
    text: str = ""
    inheritance: str = ""

    def __post_init__(self):
        if not isinstance(self.mim_number, int) or not (
            100000 <= self.mim_number <= 999999
        ):
            raise DataFormatError(
                f"MIM number must be six digits, got {self.mim_number!r}"
            )
        if not self.title:
            raise DataFormatError(
                f"entry {self.mim_number} has an empty title"
            )

    def web_link(self):
        """The entry's web link for interactive navigation."""
        return (
            "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi"
            f"?id={self.mim_number}"
        )

    def as_dict(self):
        return {
            "MimNumber": self.mim_number,
            "Title": self.title,
            "GeneSymbols": list(self.gene_symbols),
            "Text": self.text,
            "Inheritance": self.inheritance,
        }
