"""Seeded synthetic OMIM data.

Disease entries are generated with titles derived from the gene
symbols they will be linked to, so integrated views read sensibly.
Gene symbols are attached by the corpus builder.
"""

from repro.sources.omim.record import OmimRecord
from repro.util.rng import DeterministicRng

_DISEASE_PATTERNS = (
    "{symbol}-ASSOCIATED SYNDROME",
    "{symbol} DEFICIENCY",
    "OSTEOSARCOMA, {symbol}-RELATED",
    "CARDIOMYOPATHY, FAMILIAL, {symbol} TYPE",
    "NEUROPATHY, {symbol}-LINKED",
    "ANEMIA DUE TO {symbol} MUTATION",
)

_INHERITANCE_MODES = (
    "autosomal dominant",
    "autosomal recessive",
    "X-linked",
    "",
)

_TEXT_WORDS = (
    "patients",
    "with",
    "mutations",
    "in",
    "this",
    "gene",
    "present",
    "progressive",
    "clinical",
    "features",
    "including",
    "variable",
    "expressivity",
    "and",
    "onset",
)


class OmimGenerator:
    """Generate synthetic :class:`OmimRecord` populations."""

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else DeterministicRng(0)

    def generate(self, count, start_mim=100050):
        """``count`` entries with distinct MIM numbers and placeholder
        titles (no gene symbols yet — the corpus builder links them)."""
        records = []
        mim_number = start_mim
        for index in range(count):
            mim_number += self._rng.randint(3, 40)
            records.append(
                OmimRecord(
                    mim_number=mim_number,
                    title=f"PHENOTYPE ENTRY {index + 1}",
                    text=self._rng.sentence(_TEXT_WORDS, 6, 14),
                    inheritance=self._rng.choice(_INHERITANCE_MODES),
                )
            )
        return records

    def retitle_for_symbol(self, record, symbol):
        """Rewrite an entry's title around the gene symbol linked to it."""
        pattern = self._rng.choice(_DISEASE_PATTERNS)
        record.title = pattern.format(symbol=symbol)
