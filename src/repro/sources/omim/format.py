"""The omim.txt record format.

Faithful to OMIM's distribution format: ``*RECORD*`` separators and
``*FIELD* XX`` markers, with the field body on the following lines::

    *RECORD*
    *FIELD* NO
    164772
    *FIELD* TI
    164772 FBJ MURINE OSTEOSARCOMA VIRAL ONCOGENE HOMOLOG B; FOSB
    *FIELD* GS
    FOSB
    *FIELD* TX
    FosB is a member of the Fos gene family ...
    *FIELD* IN
    autosomal dominant
"""

from repro.sources.omim.record import OmimRecord
from repro.util.errors import DataFormatError

_SOURCE = "omim.txt"

_RECORD_MARK = "*RECORD*"
_FIELD_MARK = "*FIELD*"


def write_omim_txt(records):
    """Serialize records to omim.txt format."""
    chunks = []
    for record in records:
        lines = [_RECORD_MARK]
        lines.append(f"{_FIELD_MARK} NO")
        lines.append(str(record.mim_number))
        lines.append(f"{_FIELD_MARK} TI")
        lines.append(f"{record.mim_number} {record.title}")
        if record.gene_symbols:
            lines.append(f"{_FIELD_MARK} GS")
            lines.extend(record.gene_symbols)
        if record.text:
            lines.append(f"{_FIELD_MARK} TX")
            lines.append(record.text)
        if record.inheritance:
            lines.append(f"{_FIELD_MARK} IN")
            lines.append(record.inheritance)
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


def parse_omim_txt(text):
    """Parse omim.txt text into a list of :class:`OmimRecord`."""
    records = []
    current_fields = None
    current_tag = None
    record_line = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if line == _RECORD_MARK:
            if current_fields is not None:
                records.append(_finish(current_fields, record_line))
            current_fields = {}
            current_tag = None
            record_line = line_number
            continue
        if line.startswith(_FIELD_MARK):
            if current_fields is None:
                raise DataFormatError(
                    "*FIELD* before the first *RECORD*",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current_tag = line[len(_FIELD_MARK):].strip()
            if not current_tag:
                raise DataFormatError(
                    "*FIELD* marker without a tag",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current_fields.setdefault(current_tag, [])
            continue
        if not line:
            continue
        if current_fields is None or current_tag is None:
            raise DataFormatError(
                "content line outside any *FIELD*",
                line_number=line_number,
                source_name=_SOURCE,
            )
        current_fields[current_tag].append(line)
    if current_fields is not None:
        records.append(_finish(current_fields, record_line))
    return records


def _finish(fields, line_number):
    number_lines = fields.get("NO", [])
    if len(number_lines) != 1 or not number_lines[0].strip().isdigit():
        raise DataFormatError(
            "record must have exactly one numeric NO field",
            line_number=line_number,
            source_name=_SOURCE,
        )
    mim_number = int(number_lines[0].strip())
    title_lines = fields.get("TI", [])
    if not title_lines:
        raise DataFormatError(
            f"record {mim_number} is missing its TI field",
            line_number=line_number,
            source_name=_SOURCE,
        )
    title = " ".join(title_lines)
    prefix = f"{mim_number} "
    if title.startswith(prefix):
        title = title[len(prefix):]
    try:
        return OmimRecord(
            mim_number=mim_number,
            title=title,
            gene_symbols=[
                symbol.strip()
                for symbol in fields.get("GS", [])
                if symbol.strip()
            ],
            text=" ".join(fields.get("TX", [])),
            inheritance=" ".join(fields.get("IN", [])),
        )
    except DataFormatError as exc:
        raise DataFormatError(
            f"record {mim_number} is invalid: {exc}",
            line_number=line_number,
            source_name=_SOURCE,
        ) from exc
