"""The OMIM record store."""

from repro.sources.base import DataSource
from repro.sources.omim.format import parse_omim_txt, write_omim_txt
from repro.util.errors import DataFormatError


class OmimStore(DataSource):
    """In-memory omim.txt-backed store of :class:`OmimRecord`."""

    name = "OMIM"

    _FIELDS = ("MimNumber", "Title", "GeneSymbols", "Text", "Inheritance")

    _CAPABILITIES = frozenset(
        {
            ("MimNumber", "="),
            ("MimNumber", "<"),
            ("MimNumber", ">"),
            ("Title", "contains"),
            ("Title", "like"),
            ("GeneSymbols", "="),
            ("Text", "contains"),
            ("Inheritance", "="),
        }
    )

    #: Hash-indexed fields: the MIM number (batched link fetches), the
    #: symbol vocabulary (symbol joins), and the inheritance mode.
    _INDEXED_FIELDS = ("MimNumber", "GeneSymbols", "Inheritance")

    def indexed_fields(self):
        return self._INDEXED_FIELDS

    def __init__(self, records=(), index_state=None):
        self._by_mim = {}
        self._by_symbol = {}
        self._version = 0
        for record in records:
            self.add(record)
        self._adopt_or_warn(index_state)

    # -- DataSource contract ----------------------------------------------------

    def fields(self):
        return self._FIELDS

    def capabilities(self):
        return self._CAPABILITIES

    def records(self):
        return [self._by_mim[key].as_dict() for key in sorted(self._by_mim)]

    def count(self):
        return len(self._by_mim)

    @property
    def version(self):
        return self._version

    # -- store operations ----------------------------------------------------------

    def add(self, record):
        """Insert a record; duplicate MIM numbers are rejected."""
        if record.mim_number in self._by_mim:
            raise DataFormatError(
                f"duplicate MIM number {record.mim_number}",
                source_name=self.name,
            )
        self._by_mim[record.mim_number] = record
        for symbol in record.gene_symbols:
            self._by_symbol.setdefault(symbol, []).append(record)
        self._version += 1

    def get(self, mim_number):
        """The record with ``mim_number``, or ``None``."""
        return self._by_mim.get(mim_number)

    def by_gene_symbol(self, symbol):
        """All entries listing ``symbol`` among their gene symbols."""
        return list(self._by_symbol.get(symbol, ()))

    def all_records(self):
        return [self._by_mim[key] for key in sorted(self._by_mim)]

    def mim_numbers(self):
        return sorted(self._by_mim)

    # -- flat-file round trip --------------------------------------------------------

    def dump(self):
        return write_omim_txt(self.all_records())

    @classmethod
    def from_text(cls, text, index_state=None):
        return cls(parse_omim_txt(text), index_state=index_state)
