"""The common contract every annotation source implements.

Wrappers (and the warehouse baseline's extractors) talk to sources only
through this interface, so plugging a new source in means implementing
one class — requirement 2 of section 3.1: *"a new relevant data source
should be wrapped and plugged in as it comes into existence"*.

Beyond enumeration and native filtering, the contract now carries the
fetch-path machinery the mediator's hot loop depends on:

- **equality indexes** — version-keyed hash indexes built lazily per
  field, so ``=`` (and batched ``in``) predicates answer by dict
  lookup instead of scanning the extent.  A mutation bumps ``version``
  and the stale index is discarded wholesale, preserving the federated
  freshness guarantee: an indexed answer is always identical to a
  fresh scan.
- **the ``in`` operator** — one native call fetching many keys at
  once, which the executor uses to collapse N+1 per-id fetches into a
  single batched fetch.
- **fetch counters** — cumulative ``index_hits``/``scan_queries``
  (plus cold-start ``index_builds``/``index_adoptions``) accounting
  the executor snapshots into
  :class:`~repro.mediator.executor.ExecutionStats`.
- **persistent index snapshots** — ``export_index_state`` /
  ``adopt_index_state`` move the whole version-keyed index state
  across processes, so a store reloaded from disk
  (:mod:`repro.sources.persistence`) answers its first indexed query
  without any extent scan.

Concurrency contract (machine-checked by ``repro.tools``): all
indexed-state mutation happens either under the per-source
``_fetch_mutex`` or in a method that bumps ``version`` (rule ANN002),
lock construction goes through :mod:`repro.util.locks` so the race
checker can observe acquisition order, and methods suffixed
``_locked`` require the caller to hold the mutex.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sources.batch import RecordBatch
from repro.util.errors import QueryError
from repro.util.locks import make_counters, new_lock

#: One source record, as exchanged across the wrapper boundary.
Record = Dict[str, Any]

#: A built equality index: normalized key -> record positions.
EqualityIndex = Dict[Tuple[str, Any], List[int]]

#: Layout version of the serializable equality-index state produced by
#: :meth:`DataSource.export_index_state`.  Bumped whenever the exported
#: structure changes shape; :meth:`DataSource.adopt_index_state`
#: refuses any other version and the caller rebuilds lazily.
INDEX_STATE_SCHEMA = 1

#: Version of the fetch-path counter set (``fetch_stats`` keys).
#: Persisted index snapshots record it so a snapshot written by a
#: *newer* code line — whose counters this line cannot interpret — is
#: rejected instead of half-adopted.
FETCH_COUNTER_SCHEMA = 2

#: Comparison operators a source may support natively.  ``in`` is the
#: batched form of ``=``: any source that evaluates ``field = value``
#: natively also evaluates ``field in (v1, v2, ...)`` natively.
NATIVE_OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "contains", "in")


@dataclass(frozen=True)
class NativeCondition:
    """A predicate a source evaluates natively: ``field op value``.

    ``contains`` is case-insensitive substring match (flat-file grep
    style); ``like`` uses SQL wildcards; ``in`` matches when the field
    equals *any* of an iterable of candidate values (batched key
    lookup).  The mediator's optimizer pushes a condition down only
    when the source's capabilities include its (field, op) pair.
    """

    field: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in NATIVE_OPS:
            raise QueryError(f"unsupported native operator {self.op!r}")
        if self.op == "in":
            if isinstance(self.value, (str, bytes)) or not hasattr(
                self.value, "__iter__"
            ):
                raise QueryError(
                    "'in' needs an iterable of candidate values"
                )
            object.__setattr__(self, "value", tuple(self.value))

    def render(self) -> str:
        return f"{self.field} {self.op} {self.value!r}"


class DataSource(abc.ABC):
    """Abstract annotation source.

    Concrete sources differ wildly in storage structure; this contract
    is intentionally minimal: enumerate records (as plain dicts), filter
    natively where capable, and report schema and version metadata.
    """

    #: Stable source name ("LocusLink", "GO", "OMIM", ...).
    name: str = "abstract"

    #: Master switch for the equality-index fast path.  Benchmarks
    #: flip this off to measure the bare scan path; production leaves
    #: it on.
    use_indexes: bool = True

    @abc.abstractmethod
    def fields(self) -> Sequence[str]:
        """The record fields this source exposes, in schema order."""

    @abc.abstractmethod
    def capabilities(self) -> Iterable[Tuple[str, str]]:
        """Set of (field, op) pairs the source evaluates natively."""

    @abc.abstractmethod
    def records(self) -> List[Record]:
        """All records as a list of plain dicts (field -> value)."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of records currently stored."""

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """Monotone counter bumped by every mutation; the freshness
        experiment compares it against a warehouse's loaded version."""

    # -- native filtering (shared implementation) ----------------------------

    def supports(self, condition: NativeCondition) -> bool:
        """True when ``condition`` can be evaluated natively here."""
        capabilities = self.capabilities()
        if condition.op == "in":
            return (condition.field, "=") in capabilities or (
                condition.field,
                "in",
            ) in capabilities
        return (condition.field, condition.op) in capabilities

    def indexed_fields(self) -> Tuple[str, ...]:
        """Fields eligible for a hash equality index.

        By default every field the source can test for ``=`` natively;
        stores narrow or widen this to match their real storage layout.
        """
        return tuple(
            sorted({field for field, op in self.capabilities() if op == "="})
        )

    def native_query(
        self,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> List[Record]:
        """Records satisfying every condition, evaluated at the source.

        Equality and ``in`` predicates on indexed fields answer from
        the version-keyed hash index (dict lookup); everything else
        falls back to the linear scan.  Both paths return the same
        record set in the same (``records()``) order.  ``use_index``
        overrides :attr:`use_indexes` for one call — the equivalence
        property tests and benchmarks pin it.

        The index, its backing snapshot, and the hit counter are all
        read under a *single* hold of the per-source fetch mutex, so a
        concurrent mutation can never pair one version's index with
        another version's snapshot.

        Raises
        ------
        QueryError
            If any condition is outside this source's capabilities —
            the optimizer must not push it here.
        """
        conditions = list(conditions)
        for condition in conditions:
            if not self.supports(condition):
                raise QueryError(
                    f"source {self.name!r} cannot evaluate "
                    f"{condition.render()} natively"
                )
        counters = self._fetchpath_counters()
        indexes_on = self.use_indexes if use_index is None else use_index
        driver: Optional[NativeCondition] = None
        if indexes_on:
            indexable = set(self.indexed_fields())
            driver = next(
                (
                    condition
                    for condition in conditions
                    if condition.op in ("=", "in")
                    and condition.field in indexable
                ),
                None,
            )
        index: Optional[EqualityIndex] = None
        snapshot: List[Record] = []
        if driver is not None:
            with self._fetch_mutex():
                index = self._equality_index_locked(driver.field)
                if index is not None:
                    counters["index_hits"] += 1
                    snapshot = self._index_snapshot_locked()
        if index is None:
            with self._fetch_mutex():
                counters["scan_queries"] += 1
            matched = []
            for record in self.records():
                if all(
                    _evaluate(record.get(condition.field), condition)
                    for condition in conditions
                ):
                    matched.append(record)
            return matched
        assert driver is not None
        probe_values = driver.value if driver.op == "in" else (driver.value,)
        positions: set = set()
        for value in probe_values:
            for key in _probe_keys(value):
                positions.update(index.get(key, ()))
        rest = [condition for condition in conditions if condition is not driver]
        matched = []
        for position in sorted(positions):
            record = snapshot[position]
            if all(
                _evaluate(record.get(condition.field), condition)
                for condition in rest
            ):
                # Callers receive copies: the snapshot backing the
                # index must never alias records callers may mutate.
                matched.append(dict(record))
        return matched

    def native_query_batch(
        self,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> RecordBatch:
        """The columnar twin of :meth:`native_query`.

        Answers the same conditions over the same index/scan decision
        (and bumps the same fetch counters), but gathers matching row
        positions out of a columnar materialization of the extent
        instead of copying one dict per record —
        ``native_query_batch(cs).to_records() == native_query(cs)``
        holds for every supported condition list, in the same order.

        Freshness mirrors :meth:`native_query` path by path: the index
        route reads the per-version column cache (the twin of the
        index snapshot its positions refer into), while the scan route
        re-reads ``records()`` on every call and pivots only the
        records surviving its conditions.  The
        index, the column cache and the counters are all taken under a
        single hold of the fetch mutex; the column cache is immutable
        per version, so the position gather runs outside the lock.
        """
        conditions = list(conditions)
        for condition in conditions:
            if not self.supports(condition):
                raise QueryError(
                    f"source {self.name!r} cannot evaluate "
                    f"{condition.render()} natively"
                )
        counters = self._fetchpath_counters()
        indexes_on = self.use_indexes if use_index is None else use_index
        driver: Optional[NativeCondition] = None
        if indexes_on:
            indexable = set(self.indexed_fields())
            driver = next(
                (
                    condition
                    for condition in conditions
                    if condition.op in ("=", "in")
                    and condition.field in indexable
                ),
                None,
            )
        index: Optional[EqualityIndex] = None
        extent: Optional[RecordBatch] = None
        with self._fetch_mutex():
            if driver is not None:
                index = self._equality_index_locked(driver.field)
            if index is not None:
                counters["index_hits"] += 1
                extent = self._columns_locked()
            else:
                counters["scan_queries"] += 1
        if index is None:
            # The scan path evaluates conditions per record first —
            # exactly native_query's scan over ``records()``, so stores
            # mutated in place (no version bump) stay visible — and
            # pivots only the survivors: a selective columnar scan
            # costs the record scan plus a pivot of its result, never a
            # pivot of the whole extent.
            matched = [
                record
                for record in self.records()
                if all(
                    _evaluate(record.get(condition.field), condition)
                    for condition in conditions
                )
            ]
            return self._extent_batch(matched)
        assert driver is not None
        probe_values = (
            driver.value if driver.op == "in" else (driver.value,)
        )
        positions: set = set()
        for value in probe_values:
            for key in _probe_keys(value):
                positions.update(index.get(key, ()))
        keep = sorted(positions)
        rest = [
            condition
            for condition in conditions
            if condition is not driver
        ]
        assert extent is not None
        for condition in rest:
            values = extent.values(condition.field)
            keep = [
                position
                for position in keep
                if _evaluate(values[position], condition)
            ]
        return extent.take(keep)

    # -- equality indexes ----------------------------------------------------

    def equality_index(self, field: str) -> Optional[EqualityIndex]:
        """The hash index of ``field``: normalized key -> positions.

        Built lazily on first use, shared until the next mutation
        (``version`` keys the whole index state), and ``None`` when the
        field holds unhashable values — the caller scans instead.
        Serialized under the per-source fetch mutex: the executor's
        federated fetcher may probe one source from several worker
        threads at once.
        """
        with self._fetch_mutex():
            return self._equality_index_locked(field)

    def _equality_index_locked(self, field: str) -> Optional[EqualityIndex]:
        state = self._index_state_locked()
        if field in state["unindexable"]:
            return None
        index = state["fields"].get(field)
        if index is None:
            index = {}
            try:
                for position, record in enumerate(
                    self._index_snapshot_locked()
                ):
                    value = record.get(field)
                    if value is None:
                        continue
                    items = (
                        value
                        if isinstance(value, (list, tuple))
                        else [value]
                    )
                    for item in items:
                        for key in _index_keys(item):
                            index.setdefault(key, []).append(position)
            except TypeError:
                state["unindexable"].add(field)
                return None
            state["fields"][field] = index
            self._fetchpath_counters()["index_builds"] += 1
        return index

    # -- persistent index snapshots ------------------------------------------

    def export_index_state(self) -> Dict[str, Any]:
        """The equality-index state as one serializable plain dict.

        Forces every :meth:`indexed_fields` index to build first, so
        the export is complete, then returns a structure holding no
        live references into the store — safe to pickle and adopt into
        another store holding *identical* records (same content, same
        ``records()`` order): the persisted positions index into that
        shared order.  The envelope carries ``schema``, ``version``,
        ``record_count`` and the counter-set version, which
        :meth:`adopt_index_state` validates.
        """
        with self._fetch_mutex():
            for field in self.indexed_fields():
                self._equality_index_locked(field)
            state = self._index_state_locked()
            return {
                "schema": INDEX_STATE_SCHEMA,
                "counter_schema": FETCH_COUNTER_SCHEMA,
                "source": self.name,
                "version": self.version,
                "record_count": self.count(),
                "fields": {
                    field: {
                        key: tuple(positions)
                        for key, positions in index.items()
                    }
                    for field, index in state["fields"].items()
                },
                "unindexable": sorted(state["unindexable"]),
            }

    def adopt_index_state(self, state: Any) -> bool:
        """Install a previously exported index state, skipping the
        per-field extent scans of a cold start.

        Returns ``True`` on adoption, ``False`` on any mismatch —
        wrong source name, schema or counter-set from the future,
        record count disagreeing with the live extent, or a malformed
        payload — in which case the store is left untouched and
        indexes rebuild lazily as before.  Never raises.

        Deep validity of the key/position structure is the caller's
        responsibility: the persistence layer only hands over payloads
        whose content digest ties them to the exact flat file the
        store was parsed from.  Runs under the same per-source fetch
        mutex as ``_equality_index_locked``, so adoption is safe while
        federated worker threads are probing.
        """
        with self._fetch_mutex():
            return self._adopt_index_state_locked(state)

    def _adopt_index_state_locked(self, state: Any) -> bool:
        try:
            if state.get("schema") != INDEX_STATE_SCHEMA:
                return False
            if state.get("counter_schema", 0) > FETCH_COUNTER_SCHEMA:
                return False
            if state.get("source") != self.name:
                return False
            if state.get("record_count") != self.count():
                return False
            fields = {
                field: dict(index)
                for field, index in state["fields"].items()
            }
            unindexable = set(state.get("unindexable", ()))
        except (AttributeError, KeyError, TypeError, ValueError):
            return False
        self._fetch_index_state = {
            "version": self.version,
            "snapshot": None,
            "fields": fields,
            "unindexable": unindexable,
        }
        self._fetchpath_counters()["index_adoptions"] += len(fields)
        return True

    def _adopt_or_warn(self, index_state: Optional[Dict[str, Any]]) -> None:
        """Constructor-path adoption: mismatches warn instead of
        failing the build (the fallback is always a correct store)."""
        if index_state is None:
            return
        if not self.adopt_index_state(index_state):
            warnings.warn(
                f"{self.name}: persisted index state does not match "
                "this store; indexes will be rebuilt lazily",
                RuntimeWarning,
                stacklevel=3,
            )

    def fetch_stats(self) -> Dict[str, int]:
        """Cumulative fetch-path counters: native queries answered
        from an equality index vs by scanning, plus cold-start
        accounting — field indexes built by an extent scan
        (``index_builds``) vs adopted from a persisted snapshot
        (``index_adoptions``)."""
        return dict(self._fetchpath_counters())

    def _index_state_locked(self) -> Dict[str, Any]:
        """The version-keyed index state; caller holds ``_fetch_mutex``
        (the ``_locked`` suffix is the machine-checked convention)."""
        state = self.__dict__.get("_fetch_index_state")
        if state is None or state["version"] != self.version:
            state = {
                "version": self.version,
                "snapshot": None,
                "fields": {},
                "unindexable": set(),
            }
            self._fetch_index_state = state
        return state

    def _index_snapshot_locked(self) -> List[Record]:
        """One ``records()`` materialization per version, shared by all
        field indexes (positions refer into it); caller holds the
        fetch mutex, so an index and the snapshot it was built over
        are always taken from the same version."""
        state = self._index_state_locked()
        if state["snapshot"] is None:
            state["snapshot"] = self.records()
        return state["snapshot"]

    def _columns_locked(self) -> RecordBatch:
        """One columnar extent per version, cached beside the index
        snapshot (a mutation bumps ``version`` and discards both
        together); caller holds the fetch mutex.  The batch's content
        is frozen — its internal pivot cache fills idempotently from
        the version's snapshot (see :mod:`repro.sources.batch`) — so
        callers may gather from it outside the lock."""
        state = self._index_state_locked()
        extent = state.get("columns")
        if extent is None:
            extent = self._extent_batch(self._index_snapshot_locked())
            state["columns"] = extent
        return extent

    def _extent_batch(self, snapshot: List[Record]) -> RecordBatch:
        """``snapshot`` as one RecordBatch, fields in schema order with
        any extra record keys appended in first-seen order (so the
        fields cover every record and row views skip projection)."""
        ordered: Dict[str, None] = {
            field: None for field in self.fields()
        }
        for record in snapshot:
            for key in record:
                if key not in ordered:
                    ordered[key] = None
        return RecordBatch.from_records(
            snapshot, fields=tuple(ordered), covering=True
        )

    def _fetchpath_counters(self) -> Dict[str, int]:
        counters = self.__dict__.get("_fetchpath_counts")
        if counters is None:
            fresh = make_counters(
                {
                    "index_hits": 0,
                    "scan_queries": 0,
                    "index_builds": 0,
                    "index_adoptions": 0,
                },
                lock=self._fetch_mutex(),
                owner=f"{type(self).__name__}({self.name})",
            )
            counters = self.__dict__.setdefault("_fetchpath_counts", fresh)
        return counters

    def _fetch_mutex(self) -> Any:
        """Per-source lock guarding index construction and the fetch
        counters (``__dict__.setdefault`` is atomic, so lazy creation
        is itself race-free)."""
        lock = self.__dict__.get("_fetch_lock")
        if lock is None:
            lock = self.__dict__.setdefault(
                "_fetch_lock",
                new_lock(f"{type(self).__name__}._fetch_mutex"),
            )
        return lock

    def describe(self) -> str:
        """Human-readable source description used by the mediator's
        annotation-database-description registry (Figure 1)."""
        capability_text = ", ".join(
            f"{field} {op}" for field, op in sorted(self.capabilities())
        )
        return (
            f"{self.name}: {self.count()} records, fields "
            f"[{', '.join(self.fields())}], native predicates "
            f"[{capability_text}]"
        )


def _evaluate(value: Any, condition: NativeCondition) -> bool:
    """Evaluate one native condition against one field value."""
    from repro.lorel.coerce import compare, like

    if value is None:
        return False
    values = value if isinstance(value, (list, tuple)) else [value]
    if condition.op == "contains":
        needle = str(condition.value).lower()
        return any(needle in str(item).lower() for item in values)
    if condition.op == "like":
        return any(like(str(item), str(condition.value)) for item in values)
    if condition.op == "in":
        return any(
            compare("=", item, candidate)
            for item in values
            for candidate in condition.value
        )
    return any(compare(condition.op, item, condition.value) for item in values)


# -- index key normalization --------------------------------------------------
#
# Lorel's coercing equality (repro.lorel.coerce.compare) is not a plain
# hash-equality: the string "2354" equals the integer 2354, True equals
# 1 and "true", yet "01" does NOT equal "1" (string vs string compares
# exactly).  Coerced equality is not even transitive, so one key per
# value cannot reproduce it.  Instead each stored item is indexed under
# a key per *type class* it participates in, and a lookup probes every
# class its query value can coerce into.  `_index_keys`/`_probe_keys`
# are exact mirrors of `comparable_pair`: for every stored item x and
# query value q, probe_keys(q) ∩ index_keys(x) is nonempty iff
# compare("=", x, q) is true.


def _index_keys(value: Any) -> List[Tuple[str, Any]]:
    """The index keys one stored field item is filed under."""
    from repro.lorel.coerce import _as_bool, _as_number

    if isinstance(value, bool):
        return [("bool", value)]
    if isinstance(value, (int, float)):
        keys: List[Tuple[str, Any]] = [("num", value)]
        if value in (0, 1):
            keys.append(("numbool", bool(value)))
        return keys
    if isinstance(value, str):
        keys = [("str", value)]
        number = _as_number(value)
        if number is not None:
            keys.append(("strnum", number))
        as_bool = _as_bool(value)
        if as_bool is not None:
            keys.append(("strbool", as_bool))
        return keys
    if isinstance(value, (bytes, bytearray)):
        return [("bytes", bytes(value))]
    # Types coerced equality can never match positively (None, objects):
    # not indexed, exactly as the scan path never matches them with "=".
    return []


def _probe_keys(value: Any) -> List[Tuple[str, Any]]:
    """The index keys a query value must probe."""
    from repro.lorel.coerce import _as_bool, _as_number

    if isinstance(value, bool):
        return [("bool", value), ("numbool", value), ("strbool", value)]
    if isinstance(value, (int, float)):
        keys: List[Tuple[str, Any]] = [("num", value), ("strnum", value)]
        if value in (0, 1):
            keys.append(("bool", bool(value)))
        return keys
    if isinstance(value, str):
        keys = [("str", value)]
        number = _as_number(value)
        if number is not None:
            keys.append(("num", number))
        as_bool = _as_bool(value)
        if as_bool is not None:
            keys.append(("bool", as_bool))
        return keys
    if isinstance(value, (bytes, bytearray)):
        return [("bytes", bytes(value))]
    return []
