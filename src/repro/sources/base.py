"""The common contract every annotation source implements.

Wrappers (and the warehouse baseline's extractors) talk to sources only
through this interface, so plugging a new source in means implementing
one class — requirement 2 of section 3.1: *"a new relevant data source
should be wrapped and plugged in as it comes into existence"*.
"""

import abc
from dataclasses import dataclass

from repro.util.errors import QueryError

#: Comparison operators a source may support natively.
NATIVE_OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "contains")


@dataclass(frozen=True)
class NativeCondition:
    """A predicate a source evaluates natively: ``field op value``.

    ``contains`` is case-insensitive substring match (flat-file grep
    style); ``like`` uses SQL wildcards.  The mediator's optimizer
    pushes a condition down only when the source's capabilities include
    its (field, op) pair.
    """

    field: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in NATIVE_OPS:
            raise QueryError(f"unsupported native operator {self.op!r}")

    def render(self):
        return f"{self.field} {self.op} {self.value!r}"


class DataSource(abc.ABC):
    """Abstract annotation source.

    Concrete sources differ wildly in storage structure; this contract
    is intentionally minimal: enumerate records (as plain dicts), filter
    natively where capable, and report schema and version metadata.
    """

    #: Stable source name ("LocusLink", "GO", "OMIM", ...).
    name = "abstract"

    @abc.abstractmethod
    def fields(self):
        """The record fields this source exposes, in schema order."""

    @abc.abstractmethod
    def capabilities(self):
        """Set of (field, op) pairs the source evaluates natively."""

    @abc.abstractmethod
    def records(self):
        """All records as a list of plain dicts (field -> value)."""

    @abc.abstractmethod
    def count(self):
        """Number of records currently stored."""

    @property
    @abc.abstractmethod
    def version(self):
        """Monotone counter bumped by every mutation; the freshness
        experiment compares it against a warehouse's loaded version."""

    # -- native filtering (shared implementation) ----------------------------

    def supports(self, condition):
        """True when ``condition`` can be evaluated natively here."""
        return (condition.field, condition.op) in self.capabilities()

    def native_query(self, conditions=()):
        """Records satisfying every condition, evaluated at the source.

        Raises
        ------
        QueryError
            If any condition is outside this source's capabilities —
            the optimizer must not push it here.
        """
        for condition in conditions:
            if not self.supports(condition):
                raise QueryError(
                    f"source {self.name!r} cannot evaluate "
                    f"{condition.render()} natively"
                )
        matched = []
        for record in self.records():
            if all(
                _evaluate(record.get(condition.field), condition)
                for condition in conditions
            ):
                matched.append(record)
        return matched

    def describe(self):
        """Human-readable source description used by the mediator's
        annotation-database-description registry (Figure 1)."""
        capability_text = ", ".join(
            f"{field} {op}" for field, op in sorted(self.capabilities())
        )
        return (
            f"{self.name}: {self.count()} records, fields "
            f"[{', '.join(self.fields())}], native predicates "
            f"[{capability_text}]"
        )


def _evaluate(value, condition):
    """Evaluate one native condition against one field value."""
    from repro.lorel.coerce import compare, like

    if value is None:
        return False
    values = value if isinstance(value, (list, tuple)) else [value]
    if condition.op == "contains":
        needle = str(condition.value).lower()
        return any(needle in str(item).lower() for item in values)
    if condition.op == "like":
        return any(like(str(item), str(condition.value)) for item in values)
    return any(compare(condition.op, item, condition.value) for item in values)
