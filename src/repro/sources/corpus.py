"""Seeded construction of a consistent multi-source annotation corpus.

Every experiment needs LocusLink, GO and OMIM populated so that their
cross-references agree on one underlying biological ground truth:
loci annotated with GO terms, loci associated with OMIM entries via
gene symbols, citations annotating loci.  :class:`AnnotationCorpus`
builds all of it from a single seed, keeps the ground truth for
scoring, and can inject the *semantic conflicts and contradictions*
(paper requirement 6) the reconciliation experiment measures:

``symbol_case``
    OMIM lists the gene symbol in a different case than LocusLink —
    a naive symbol join misses the association.
``symbol_alias``
    OMIM lists an alias symbol instead of the official one.
``stale_go``
    LocusLink annotates a locus with a term that GO has marked
    obsolete — a cross-source contradiction.
``dangling_omim``
    LocusLink references a MIM number that does not exist in OMIM.
"""

from dataclasses import dataclass, field

from repro.sources.go.generator import GoGenerator
from repro.sources.go.ontology import GoOntology
from repro.sources.locuslink.generator import LocusLinkGenerator
from repro.sources.locuslink.store import LocusLinkStore
from repro.sources.omim.generator import OmimGenerator
from repro.sources.omim.store import OmimStore
from repro.sources.pubmedlike.generator import CitationGenerator
from repro.sources.pubmedlike.store import CitationStore
from repro.util.errors import ConfigurationError
from repro.util.rng import DeterministicRng

CONFLICT_KINDS = ("symbol_case", "symbol_alias", "stale_go", "dangling_omim")


@dataclass(frozen=True)
class CorpusParameters:
    """Size and behaviour knobs of a generated corpus.

    The defaults give the scale the Figure-5 experiment uses: 500 loci,
    300 GO terms, 150 OMIM entries.
    """

    loci: int = 500
    go_terms: int = 300
    omim_entries: int = 150
    go_annotation_rate: float = 0.7
    max_go_per_locus: int = 4
    omim_link_rate: float = 0.3
    max_omim_per_locus: int = 2
    #: Fraction of gene-disease associations recorded *only* on the
    #: OMIM side (via gene symbol), with no back-reference in the
    #: locus record — OMIM curation running ahead of LocusLink.  These
    #: are the associations only a symbol join can find, and the ones
    #: symbol conflicts can hide.
    omim_only_rate: float = 0.35
    conflict_rate: float = 0.0

    def __post_init__(self):
        if self.loci < 1 or self.go_terms < 3 or self.omim_entries < 1:
            raise ConfigurationError(
                "corpus needs >=1 locus, >=3 GO terms, >=1 OMIM entry"
            )
        for rate_name in ("go_annotation_rate", "omim_link_rate",
                          "conflict_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{rate_name} must be in [0, 1], got {rate}"
                )


@dataclass(frozen=True)
class Conflict:
    """One injected cross-source contradiction."""

    kind: str
    locus_id: int
    detail: str


@dataclass
class GroundTruth:
    """The intended biological facts, independent of source mangling.

    ``go_by_locus`` and ``omim_by_locus`` record the *true* annotations
    and associations; conflict injection changes how sources spell
    them, never the truth itself — so integration quality is scored
    against these maps.
    """

    go_by_locus: dict = field(default_factory=dict)
    omim_by_locus: dict = field(default_factory=dict)
    conflicts: list = field(default_factory=list)

    def loci_with_go(self):
        return {locus for locus, terms in self.go_by_locus.items() if terms}

    def loci_with_omim(self):
        return {locus for locus, mims in self.omim_by_locus.items() if mims}

    def figure5b_expected(self):
        """LocusIDs the Figure-5(b) query must return: some GO function
        but no OMIM disease association."""
        return self.loci_with_go() - self.loci_with_omim()


class AnnotationCorpus:
    """A consistent LocusLink + GO + OMIM population with ground truth."""

    def __init__(self, locuslink, go, omim, ground_truth, seed, parameters):
        self.locuslink = locuslink
        self.go = go
        self.omim = omim
        self.ground_truth = ground_truth
        self.seed = seed
        self.parameters = parameters

    @classmethod
    def generate(cls, seed=0, parameters=None):
        """Build a corpus deterministically from ``seed``."""
        parameters = parameters or CorpusParameters()
        rng = DeterministicRng(seed)

        go_terms = GoGenerator(rng.substream("go")).generate(
            parameters.go_terms
        )
        go = GoOntology(go_terms)
        annotatable = [
            term.go_id for term in go.all_terms()
            if not term.obsolete and not term.is_root
        ]
        obsolete_ids = [
            term.go_id for term in go.all_terms() if term.obsolete
        ]

        omim_generator = OmimGenerator(rng.substream("omim"))
        omim_records = omim_generator.generate(parameters.omim_entries)

        loci = LocusLinkGenerator(rng.substream("locuslink")).generate(
            parameters.loci
        )

        truth = GroundTruth()
        link_rng = rng.substream("links")
        conflict_rng = rng.substream("conflicts")

        cls._link_go(loci, annotatable, truth, parameters, link_rng)
        cls._link_omim(
            loci, omim_records, omim_generator, truth, parameters, link_rng
        )
        cls._inject_conflicts(
            loci, omim_records, obsolete_ids, truth, parameters, conflict_rng
        )

        corpus = cls(
            locuslink=LocusLinkStore(loci),
            go=go,
            omim=OmimStore(omim_records),
            ground_truth=truth,
            seed=seed,
            parameters=parameters,
        )
        return corpus

    # -- linking ---------------------------------------------------------------

    @staticmethod
    def _link_go(loci, annotatable, truth, parameters, rng):
        for record in loci:
            truth.go_by_locus[record.locus_id] = set()
            if not annotatable or not rng.bernoulli(
                parameters.go_annotation_rate
            ):
                continue
            count = rng.randint(
                1, min(parameters.max_go_per_locus, len(annotatable))
            )
            chosen = sorted(rng.sample(annotatable, count))
            record.go_ids.extend(chosen)
            truth.go_by_locus[record.locus_id].update(chosen)

    @staticmethod
    def _link_omim(loci, omim_records, omim_generator, truth, parameters,
                   rng):
        for record in loci:
            truth.omim_by_locus[record.locus_id] = set()
            if not omim_records or not rng.bernoulli(
                parameters.omim_link_rate
            ):
                continue
            count = rng.randint(
                1, min(parameters.max_omim_per_locus, len(omim_records))
            )
            for entry in rng.sample(omim_records, count):
                if record.symbol in entry.gene_symbols:
                    continue
                if not rng.bernoulli(parameters.omim_only_rate):
                    record.omim_ids.append(entry.mim_number)
                entry.gene_symbols.append(record.symbol)
                if entry.title.startswith("PHENOTYPE ENTRY"):
                    omim_generator.retitle_for_symbol(entry, record.symbol)
                truth.omim_by_locus[record.locus_id].add(entry.mim_number)

    # -- conflict injection -------------------------------------------------------

    @classmethod
    def _inject_conflicts(cls, loci, omim_records, obsolete_ids, truth,
                          parameters, rng):
        if parameters.conflict_rate <= 0.0:
            return
        entries_by_mim = {entry.mim_number: entry for entry in omim_records}
        for record in loci:
            if not rng.bernoulli(parameters.conflict_rate):
                continue
            # Symbol conflicts carry the experiment (they are what
            # reconciliation uniquely repairs), so they are drawn twice
            # as often as the reference conflicts.
            kind = rng.choice(
                ("symbol_case", "symbol_alias") + CONFLICT_KINDS
            )
            conflict = cls._inject_one(
                kind, record, entries_by_mim, obsolete_ids, truth, rng
            )
            if conflict is not None:
                truth.conflicts.append(conflict)

    @staticmethod
    def _inject_one(kind, record, entries_by_mim, obsolete_ids, truth, rng):
        if kind in ("symbol_case", "symbol_alias"):
            linked = [
                mim
                for mim in sorted(truth.omim_by_locus[record.locus_id])
                if mim in entries_by_mim
            ]
            if not linked:
                return None
            # Prefer associations recorded only on the OMIM side: a
            # mangled symbol there actually hides the association from
            # non-reconciling joins.
            symbol_only = [
                mim for mim in linked if mim not in record.omim_ids
            ]
            entry = entries_by_mim[rng.choice(symbol_only or linked)]
            if record.symbol not in entry.gene_symbols:
                return None
            index = entry.gene_symbols.index(record.symbol)
            if kind == "symbol_case":
                mangled = record.symbol.lower()
            else:
                if not record.aliases:
                    return None
                mangled = rng.choice(record.aliases)
            entry.gene_symbols[index] = mangled
            return Conflict(
                kind=kind,
                locus_id=record.locus_id,
                detail=(
                    f"OMIM {entry.mim_number} lists {mangled!r} for "
                    f"official symbol {record.symbol!r}"
                ),
            )
        if kind == "stale_go":
            if not obsolete_ids:
                return None
            stale = rng.choice(obsolete_ids)
            if stale in record.go_ids:
                return None
            record.go_ids.append(stale)
            return Conflict(
                kind=kind,
                locus_id=record.locus_id,
                detail=f"locus annotated with obsolete term {stale}",
            )
        if kind == "dangling_omim":
            phantom = 999000 + rng.randint(1, 999)
            if phantom in entries_by_mim or phantom in record.omim_ids:
                return None
            record.omim_ids.append(phantom)
            return Conflict(
                kind=kind,
                locus_id=record.locus_id,
                detail=f"locus references nonexistent MIM {phantom}",
            )
        raise ConfigurationError(f"unknown conflict kind {kind!r}")

    # -- extras ---------------------------------------------------------------

    def make_citation_store(self, count=200):
        """A PubMed-like store over this corpus's loci (used by the
        plug-in-a-new-source experiment).

        Wiring is bidirectional, like the OMIM links: each generated
        citation lists the loci it annotates, and those locus records
        gain the citation's PMID.
        """
        rng = DeterministicRng(self.seed).substream("citations")
        citations = CitationGenerator(rng).generate(
            count, self.locuslink.locus_ids()
        )
        for citation in citations:
            for locus_id in citation.locus_ids:
                record = self.locuslink.get(locus_id)
                if record is not None and citation.pmid not in (
                    record.pubmed_ids
                ):
                    record.pubmed_ids.append(citation.pmid)
        return CitationStore(citations)

    def make_protein_store(self, coverage=0.6, uncurated_rate=0.3):
        """A SwissProt-like store over this corpus's loci (the
        model-variety source of the paper's future work)."""
        from repro.sources.swissprotlike.generator import ProteinGenerator
        from repro.sources.swissprotlike.store import ProteinStore

        rng = DeterministicRng(self.seed).substream("proteins")
        records = ProteinGenerator(rng).generate(
            self.locuslink.all_records(),
            coverage=coverage,
            uncurated_rate=uncurated_rate,
        )
        return ProteinStore(records)

    def sources(self):
        """The three default sources in the paper's order."""
        return [self.locuslink, self.go, self.omim]

    def describe(self):
        return (
            f"corpus(seed={self.seed}): "
            f"{self.locuslink.count()} loci, {self.go.count()} GO terms, "
            f"{self.omim.count()} OMIM entries, "
            f"{len(self.ground_truth.conflicts)} injected conflicts"
        )
