"""The LL_tmpl flat-file format.

NCBI distributed LocusLink as ``LL_tmpl``: records separated by ``>>``
lines, each field one ``TAG: value`` line, repeating tags for
multi-valued fields.  Example::

    >>2354
    LOCUSID: 2354
    ORGANISM: Homo sapiens
    OFFICIAL_SYMBOL: FOSB
    SUMMARY: FBJ murine osteosarcoma viral oncogene homolog B
    MAP: 19q13.32
    ALIAS_SYMBOL: G0S3
    GO: GO:0003700
    OMIM: 164772
    PMID: 8889548

This module writes and parses that format, raising
:class:`~repro.util.errors.DataFormatError` with line numbers for every
malformation so corrupt dumps fail loudly.
"""

from repro.sources.locuslink.record import LocusRecord
from repro.util.errors import DataFormatError

_SOURCE = "LL_tmpl"


def write_ll_tmpl(records):
    """Serialize records to LL_tmpl text (records in given order)."""
    chunks = []
    for record in records:
        lines = [f">>{record.locus_id}"]
        lines.append(f"LOCUSID: {record.locus_id}")
        lines.append(f"ORGANISM: {record.organism}")
        lines.append(f"OFFICIAL_SYMBOL: {record.symbol}")
        if record.description:
            lines.append(f"SUMMARY: {record.description}")
        if record.position:
            lines.append(f"MAP: {record.position}")
        for alias in record.aliases:
            lines.append(f"ALIAS_SYMBOL: {alias}")
        for go_id in record.go_ids:
            lines.append(f"GO: {go_id}")
        for omim_id in record.omim_ids:
            lines.append(f"OMIM: {omim_id}")
        for pmid in record.pubmed_ids:
            lines.append(f"PMID: {pmid}")
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


def parse_ll_tmpl(text):
    """Parse LL_tmpl text into a list of :class:`LocusRecord`."""
    records = []
    current = None
    current_line = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith(">>"):
            if current is not None:
                records.append(_finish(current, current_line))
            header = line[2:].strip()
            if not header.isdigit():
                raise DataFormatError(
                    f"record separator must be '>>' + LocusID, got {line!r}",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current = {"header_id": int(header)}
            current_line = line_number
            continue
        if current is None:
            raise DataFormatError(
                "field line before the first '>>' record separator",
                line_number=line_number,
                source_name=_SOURCE,
            )
        if ": " not in line and not line.endswith(":"):
            raise DataFormatError(
                f"expected 'TAG: value', got {line!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        tag, _, value = line.partition(":")
        tag = tag.strip()
        value = value.strip()
        _apply_field(current, tag, value, line_number)
    if current is not None:
        records.append(_finish(current, current_line))
    return records


def _apply_field(current, tag, value, line_number):
    if tag == "LOCUSID":
        if not value.isdigit():
            raise DataFormatError(
                f"LOCUSID must be an integer, got {value!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        current["locus_id"] = int(value)
    elif tag == "ORGANISM":
        current["organism"] = value
    elif tag == "OFFICIAL_SYMBOL":
        current["symbol"] = value
    elif tag == "SUMMARY":
        current["description"] = value
    elif tag == "MAP":
        current["position"] = value
    elif tag == "ALIAS_SYMBOL":
        current.setdefault("aliases", []).append(value)
    elif tag == "GO":
        current.setdefault("go_ids", []).append(value)
    elif tag == "OMIM":
        if not value.isdigit():
            raise DataFormatError(
                f"OMIM must be a MIM number, got {value!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        current.setdefault("omim_ids", []).append(int(value))
    elif tag == "PMID":
        if not value.isdigit():
            raise DataFormatError(
                f"PMID must be numeric, got {value!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        current.setdefault("pubmed_ids", []).append(int(value))
    else:
        # LL_tmpl had dozens of tags; unknown ones are preserved policy-
        # free by real parsers — we skip them but never crash.
        current.setdefault("ignored_tags", []).append(tag)


def _finish(current, line_number):
    header_id = current.pop("header_id")
    current.pop("ignored_tags", None)
    locus_id = current.get("locus_id")
    if locus_id is None:
        raise DataFormatError(
            f"record >>{header_id} is missing its LOCUSID field",
            line_number=line_number,
            source_name=_SOURCE,
        )
    if locus_id != header_id:
        raise DataFormatError(
            f"record separator >>{header_id} disagrees with "
            f"LOCUSID: {locus_id}",
            line_number=line_number,
            source_name=_SOURCE,
        )
    try:
        return LocusRecord(**current)
    except (TypeError, DataFormatError) as exc:
        raise DataFormatError(
            f"record >>{header_id} is incomplete: {exc}",
            line_number=line_number,
            source_name=_SOURCE,
        ) from exc
