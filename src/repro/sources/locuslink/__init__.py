"""LocusLink: flat-file gene locus records (source #1).

NCBI's LocusLink distributed its data as ``LL_tmpl`` flat files — one
record per locus, ``FIELD: value`` lines, ``>>`` record separators.
This subpackage reproduces that shape: the record model, the flat
format, a store with native filtering, and a seeded generator.
"""

from repro.sources.locuslink.format import parse_ll_tmpl, write_ll_tmpl
from repro.sources.locuslink.generator import LocusLinkGenerator
from repro.sources.locuslink.record import LocusRecord
from repro.sources.locuslink.store import LocusLinkStore

__all__ = [
    "LocusLinkGenerator",
    "LocusLinkStore",
    "LocusRecord",
    "parse_ll_tmpl",
    "write_ll_tmpl",
]
