"""Seeded synthetic LocusLink data.

Generates realistic-looking loci: HGNC-style symbols, cytogenetic
positions, biology-flavoured descriptions, and a controlled organism
mix.  Cross-links (GO, OMIM, PubMed) are attached afterwards by the
corpus builder so that all sources agree on the same ground truth.
"""

from repro.sources.locuslink.record import LocusRecord
from repro.util.rng import DeterministicRng

_ORGANISMS = (
    ("Homo sapiens", 0.7),
    ("Mus musculus", 0.2),
    ("Rattus norvegicus", 0.1),
)

_DESCRIPTION_WORDS = (
    "protein",
    "kinase",
    "receptor",
    "binding",
    "transcription",
    "factor",
    "homolog",
    "viral",
    "oncogene",
    "membrane",
    "mitochondrial",
    "zinc",
    "finger",
    "growth",
    "signal",
    "transduction",
    "domain",
    "containing",
    "regulator",
    "channel",
)


class LocusLinkGenerator:
    """Generate synthetic :class:`LocusRecord` populations."""

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else DeterministicRng(0)

    def generate(self, count, start_id=1000):
        """``count`` loci with distinct LocusIDs and unique symbols.

        LocusIDs are spaced irregularly (real LocusIDs are sparse) and
        symbols never collide within one generated population.
        """
        records = []
        used_symbols = set()
        locus_id = start_id
        for _ in range(count):
            locus_id += self._rng.randint(1, 9)
            symbol = self._unique_symbol(used_symbols)
            organism = self._draw_organism()
            record = LocusRecord(
                locus_id=locus_id,
                organism=organism,
                symbol=symbol,
                description=self._rng.sentence(_DESCRIPTION_WORDS),
                position=self._rng.map_position(),
                aliases=self._aliases(symbol),
            )
            records.append(record)
        return records

    def _unique_symbol(self, used):
        while True:
            symbol = self._rng.gene_symbol()
            if symbol not in used:
                used.add(symbol)
                return symbol

    def _draw_organism(self):
        roll = self._rng.random()
        cumulative = 0.0
        for organism, weight in _ORGANISMS:
            cumulative += weight
            if roll < cumulative:
                return organism
        return _ORGANISMS[-1][0]

    def _aliases(self, symbol):
        count = self._rng.randint(0, 2)
        return [f"{symbol}-ALT{index + 1}" for index in range(count)]
