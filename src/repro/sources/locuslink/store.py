"""The LocusLink record store.

A flat-file-backed store: records are held in LocusID order, indexed by
LocusID and symbol.  Native capabilities reflect what a flat-file
source can actually do — exact key lookup, field equality, and grep-
style substring search — nothing more, so the optimizer's pushdown
decisions are grounded in real limitations.
"""

from repro.sources.base import DataSource
from repro.sources.locuslink.format import parse_ll_tmpl, write_ll_tmpl
from repro.util.errors import DataFormatError


class LocusLinkStore(DataSource):
    """In-memory LL_tmpl-backed store of :class:`LocusRecord`."""

    name = "LocusLink"

    _FIELDS = (
        "LocusID",
        "Organism",
        "Symbol",
        "Description",
        "Position",
        "Aliases",
        "GoIDs",
        "OmimIDs",
        "PubmedIDs",
    )

    _CAPABILITIES = frozenset(
        {
            ("LocusID", "="),
            ("LocusID", "<"),
            ("LocusID", "<="),
            ("LocusID", ">"),
            ("LocusID", ">="),
            ("Organism", "="),
            ("Symbol", "="),
            ("Symbol", "like"),
            ("Position", "like"),
            ("Description", "contains"),
            ("GoIDs", "="),
            ("OmimIDs", "="),
            ("PubmedIDs", "="),
        }
    )

    #: Fields backed by a version-keyed hash index: the primary key,
    #: the symbol vocabulary, and the three cross-reference fields the
    #: mediator's semijoin and link matching probe by equality.
    _INDEXED_FIELDS = (
        "LocusID",
        "Organism",
        "Symbol",
        "GoIDs",
        "OmimIDs",
        "PubmedIDs",
    )

    def indexed_fields(self):
        return self._INDEXED_FIELDS

    def __init__(self, records=(), index_state=None):
        self._by_id = {}
        self._by_symbol = {}
        self._version = 0
        for record in records:
            self.add(record)
        self._adopt_or_warn(index_state)

    # -- DataSource contract -------------------------------------------------

    def fields(self):
        return self._FIELDS

    def capabilities(self):
        return self._CAPABILITIES

    def records(self):
        return [self._by_id[key].as_dict() for key in sorted(self._by_id)]

    def count(self):
        return len(self._by_id)

    @property
    def version(self):
        return self._version

    # -- store operations -----------------------------------------------------

    def add(self, record):
        """Insert a record; duplicate LocusIDs are rejected."""
        if record.locus_id in self._by_id:
            raise DataFormatError(
                f"duplicate LocusID {record.locus_id}", source_name=self.name
            )
        self._by_id[record.locus_id] = record
        self._by_symbol.setdefault(record.symbol, []).append(record)
        self._version += 1

    def remove(self, locus_id):
        """Delete a record by LocusID."""
        record = self._by_id.pop(locus_id, None)
        if record is None:
            raise DataFormatError(
                f"no locus {locus_id} to remove", source_name=self.name
            )
        self._by_symbol[record.symbol].remove(record)
        if not self._by_symbol[record.symbol]:
            del self._by_symbol[record.symbol]
        self._version += 1

    def get(self, locus_id):
        """The record with ``locus_id``, or ``None``."""
        return self._by_id.get(locus_id)

    def by_symbol(self, symbol):
        """All records carrying ``symbol`` as their official symbol."""
        return list(self._by_symbol.get(symbol, ()))

    def all_records(self):
        """All :class:`LocusRecord` objects in LocusID order."""
        return [self._by_id[key] for key in sorted(self._by_id)]

    def locus_ids(self):
        return sorted(self._by_id)

    # -- flat-file round trip ---------------------------------------------------

    def dump(self):
        """The store's content as LL_tmpl text."""
        return write_ll_tmpl(self.all_records())

    @classmethod
    def from_text(cls, text, index_state=None):
        """Build a store by parsing LL_tmpl text; ``index_state`` (a
        matching :meth:`~repro.sources.base.DataSource.export_index_state`
        snapshot) skips the cold-start index rebuild."""
        return cls(parse_ll_tmpl(text), index_state=index_state)
