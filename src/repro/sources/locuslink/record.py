"""The LocusLink record model.

Mirrors the fields the paper's Figures 2 and 3 show for the LocusLink
fragment (LocusID, Organism, Symbol, Description, Position, Links) plus
the cross-reference fields the integrated query of Figure 5 needs
(GO annotations, OMIM associations, PubMed citations).
"""

from dataclasses import dataclass, field

from repro.util.errors import DataFormatError


@dataclass
class LocusRecord:
    """One gene locus.

    Attributes
    ----------
    locus_id:
        The integer LocusID, the source's primary key.
    organism:
        Species name as LocusLink spells it (e.g. ``Homo sapiens``).
    symbol:
        Official gene symbol.
    description:
        Free-text official gene name / description.
    position:
        Cytogenetic map position (e.g. ``19q13.32``), may be empty.
    aliases:
        Alternate symbols.
    go_ids:
        GO term accessions annotating this locus (``GO:0003700``).
    omim_ids:
        MIM numbers of associated disease entries.
    pubmed_ids:
        Supporting citation PMIDs.
    """

    locus_id: int
    organism: str
    symbol: str
    description: str = ""
    position: str = ""
    aliases: list = field(default_factory=list)
    go_ids: list = field(default_factory=list)
    omim_ids: list = field(default_factory=list)
    pubmed_ids: list = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.locus_id, int) or self.locus_id < 1:
            raise DataFormatError(
                f"LocusID must be a positive integer, got {self.locus_id!r}"
            )
        if not self.symbol:
            raise DataFormatError(
                f"locus {self.locus_id} has an empty symbol"
            )
        if not self.organism:
            raise DataFormatError(
                f"locus {self.locus_id} has an empty organism"
            )

    def web_link(self):
        """The locus's web link, used for interactive navigation."""
        return f"http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={self.locus_id}"

    def as_dict(self):
        """Plain-dict view used by the :class:`~repro.sources.base.DataSource`
        contract (lists are copied so callers cannot mutate the record)."""
        return {
            "LocusID": self.locus_id,
            "Organism": self.organism,
            "Symbol": self.symbol,
            "Description": self.description,
            "Position": self.position,
            "Aliases": list(self.aliases),
            "GoIDs": list(self.go_ids),
            "OmimIDs": list(self.omim_ids),
            "PubmedIDs": list(self.pubmed_ids),
        }
