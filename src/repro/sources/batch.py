"""Columnar record batches: the dict-of-columns exchange format.

Record-at-a-time execution materializes one Python dict per record per
stage, so the semijoin speedup curve flattens as locus counts grow —
the per-record constant (dict allocation, per-field lookup, per-record
copies) dominates.  A :class:`RecordBatch` holds the same data as one
list per field plus a presence mask, so operators touch whole columns
(one dict lookup per *field*, not per field per record) and the fetch
layer gathers positions out of per-version column caches instead of
copying dicts.

Layout
------
``columns[field]`` is a plain list of cell values, ``present[field]``
a parallel list of booleans distinguishing an *absent* field from one
stored as ``None`` — the distinction ragged record dicts carry, which
``to_records(from_records(rs)) == rs`` must preserve (a Hypothesis
property pins that round-trip down).  All columns share one length.

Late materialization
--------------------
A batch built by :meth:`from_records` keeps the record list and pivots
a column only on the first columnar read of that field.  In pure
Python the pivot itself is linear work per cell, so eagerly pivoting
every field makes a columnar scan strictly *slower* than the record
scan it replaces; lazily, a stage that reads two columns out of ten
pays for two, ``take`` gathers one row list instead of N columns, and
the row boundary (``record_at`` / ``to_records``) returns dict copies
of the adopted records instead of reassembling dicts cell by cell.
The pivot cache is filled idempotently: concurrent readers of a
shared batch compute identical columns from the same adopted records
(batches are frozen — see below), so the last assignment winning is
harmless; the presence mask is published before its value column so a
reader never observes one without the other.

A batch **adopts** the records given to ``from_records``: the caller
must not mutate those dicts afterwards (sources hand over
freshly-materialized record dicts, exactly what the record path
returns to its callers).

This module sits below the wrapper boundary: it imports nothing from
the mediator or wrapper layers, so sources, wrappers, the fetch
protocol and the executor can all exchange batches freely.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: One source record, as exchanged across the wrapper boundary.
Record = Dict[str, Any]

#: Serialized batch layout version (see :meth:`RecordBatch.to_payload`).
BATCH_PAYLOAD_SCHEMA = 1

#: Cell marker distinguishing "absent" from "stored as None" while
#: pivoting (never escapes this module).
_ABSENT = object()


class RecordBatch:
    """A columnar batch of records: one list per field.

    Construction through :meth:`from_records` / :meth:`from_columns`;
    row-level access through :meth:`record_at` / :meth:`to_records`;
    columnar access through :meth:`values` / :meth:`column_pair` and
    the typed accessors.
    """

    __slots__ = (
        "_fields",
        "_field_set",
        "_columns",
        "_present",
        "_rows",
        "_records",
        "_project",
    )

    def __init__(
        self,
        fields: Sequence[str],
        columns: Dict[str, List[Any]],
        present: Dict[str, List[bool]],
        rows: int,
        records: Optional[List[Record]] = None,
        project: bool = False,
    ) -> None:
        self._fields = tuple(fields)
        self._field_set = frozenset(self._fields)
        self._columns = columns
        self._present = present
        self._rows = rows
        #: Adopted row store backing lazy pivots (None once eager).
        self._records = records
        #: True when the adopted records may carry keys outside
        #: ``fields`` (explicit narrowing), so row views must project.
        self._project = project

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls, fields: Sequence[str] = ()) -> "RecordBatch":
        return cls(
            tuple(fields),
            {field: [] for field in fields},
            {field: [] for field in fields},
            0,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Record],
        fields: Optional[Sequence[str]] = None,
        covering: bool = False,
    ) -> "RecordBatch":
        """Adopt a list of record dicts as a (lazily pivoted) batch.

        Without an explicit ``fields`` sequence the column order is the
        first-seen key order across the records (ragged records are
        fine: missing cells get ``present=False``).  An explicit
        ``fields`` narrower than the records' keys projects row views
        onto those fields; pass ``covering=True`` to assert the fields
        are a superset of every record's keys, which lets ``to_records``
        skip the projection.  The records are adopted, not copied —
        callers must not mutate them afterwards.
        """
        adopted = list(records)
        project = fields is not None and not covering
        if fields is None:
            ordered: Dict[str, None] = {}
            for record in adopted:
                for key in record:
                    ordered[key] = None
            fields = tuple(ordered)
        return cls(
            tuple(fields),
            {},
            {},
            len(adopted),
            records=adopted,
            project=project,
        )

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """One batch holding every row of ``batches``, in order.

        The field order is the union of the inputs' fields in
        first-seen order across the batches — for batches built over
        contiguous slices of one extent (the sharded fetch path) that
        reproduces the unsharded extent's field order exactly.  When
        every input still holds non-projecting adopted records, the
        result adopts the concatenated record lists without copying
        (the zero-copy shard merge); otherwise columns are gathered
        presence-aware.
        """
        batches = [batch for batch in batches if batch is not None]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        ordered: Dict[str, None] = {}
        for batch in batches:
            for field in batch._fields:
                ordered[field] = None
        fields = tuple(ordered)
        rows = sum(batch._rows for batch in batches)
        if all(
            batch._records is not None and not batch._project
            for batch in batches
        ):
            records: List[Record] = []
            for batch in batches:
                records.extend(batch._records or ())
            # Non-projecting inputs cover their records, so the field
            # union covers the concatenation too.
            return cls(fields, {}, {}, rows, records=records)
        columns: Dict[str, List[Any]] = {}
        present: Dict[str, List[bool]] = {}
        for field in fields:
            values: List[Any] = []
            mask: List[bool] = []
            for batch in batches:
                pair = batch.column_pair(field)
                values.extend(pair[0])
                mask.extend(pair[1])
            columns[field] = values
            present[field] = mask
        return cls(fields, columns, present, rows)

    @classmethod
    def from_columns(
        cls,
        fields: Sequence[str],
        columns: Dict[str, List[Any]],
        present: Optional[Dict[str, List[bool]]] = None,
    ) -> "RecordBatch":
        """Adopt pre-built columns (every cell present by default)."""
        rows = len(columns[fields[0]]) if fields else 0
        for field in fields:
            if len(columns[field]) != rows:
                raise ValueError(
                    f"column {field!r} has {len(columns[field])} cells, "
                    f"expected {rows}"
                )
        if present is None:
            present = {field: [True] * rows for field in fields}
        return cls(tuple(fields), dict(columns), present, rows)

    # -- shape ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._rows

    @property
    def fields(self) -> Tuple[str, ...]:
        return self._fields

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordBatch):
            return NotImplemented
        if self._fields != other._fields or self._rows != other._rows:
            return False
        return all(
            self._pair(field) == other._pair(field)
            for field in self._fields
        )

    def __repr__(self) -> str:
        return (
            f"RecordBatch({self._rows} rows x "
            f"{len(self._fields)} columns)"
        )

    # -- lazy pivot ----------------------------------------------------------

    def _pair(
        self, field: str
    ) -> Optional[Tuple[List[Any], List[bool]]]:
        """``(values, present)`` of ``field``, pivoting on first read;
        ``None`` for a field this batch does not carry."""
        column = self._columns.get(field)
        if column is not None:
            return column, self._present[field]
        if field not in self._field_set or self._records is None:
            return None
        absent = _ABSENT
        cells = [record.get(field, absent) for record in self._records]
        present = [cell is not absent for cell in cells]
        column = [None if cell is absent else cell for cell in cells]
        # Publish the mask first: readers key off the value column, so
        # they never see a column without its mask (idempotent fill —
        # see the module docstring).
        self._present[field] = present
        self._columns[field] = column
        return column, present

    def _materialize(self) -> None:
        """Pivot every field and drop the row store (eager form)."""
        if self._records is None:
            return
        for field in self._fields:
            self._pair(field)
        self._records = None
        self._project = False

    # -- columnar access -----------------------------------------------------

    def values(self, field: str) -> List[Any]:
        """The value column of ``field`` (``None`` for absent cells;
        an unknown field is an all-``None`` column, mirroring
        ``record.get``)."""
        pair = self._pair(field)
        if pair is None:
            return [None] * self._rows
        return pair[0]

    def column_pair(self, field: str) -> Tuple[List[Any], List[bool]]:
        """``(values, present)`` for one field, for presence-aware
        columnar operators."""
        pair = self._pair(field)
        if pair is None:
            return [None] * self._rows, [False] * self._rows
        return pair

    def present_values(self, field: str) -> List[Any]:
        """Values of the cells actually present in ``field``."""
        pair = self._pair(field)
        if pair is None:
            return []
        column, present = pair
        return [
            value for value, here in zip(column, present) if here
        ]

    def cell(self, field: str, row: int, default: Any = None) -> Any:
        """One cell, ``record.get(field, default)`` semantics."""
        column = self._columns.get(field)
        if column is not None:
            return column[row] if self._present[field][row] else default
        if self._records is not None and field in self._field_set:
            return self._records[row].get(field, default)
        return default

    # -- typed accessors -----------------------------------------------------

    def ints(self, field: str) -> List[Optional[int]]:
        """The column coerced to ``int`` (``None`` cells stay None)."""
        return [
            None if value is None else int(value)
            for value in self.values(field)
        ]

    def floats(self, field: str) -> List[Optional[float]]:
        """The column coerced to ``float`` (``None`` cells stay None)."""
        return [
            None if value is None else float(value)
            for value in self.values(field)
        ]

    def strings(self, field: str) -> List[Optional[str]]:
        """The column coerced to ``str`` (``None`` cells stay None)."""
        return [
            None if value is None else str(value)
            for value in self.values(field)
        ]

    # -- row-level views -----------------------------------------------------

    def record_at(self, row: int) -> Record:
        """Row ``row`` as a plain record dict (present cells only)."""
        if self._records is not None:
            record = self._records[row]
            if not self._project:
                return dict(record)
            field_set = self._field_set
            return {
                key: value
                for key, value in record.items()
                if key in field_set
            }
        record: Record = {}
        for field in self._fields:
            if self._present[field][row]:
                record[field] = self._columns[field][row]
        return record

    def to_records(self) -> List[Record]:
        """The batch as a list of record dicts — the exact inverse of
        :meth:`from_records` (ragged records round-trip)."""
        if self._records is not None:
            if not self._project:
                return [dict(record) for record in self._records]
            field_set = self._field_set
            return [
                {
                    key: value
                    for key, value in record.items()
                    if key in field_set
                }
                for record in self._records
            ]
        fields = self._fields
        columns = self._columns
        present = self._present
        records: List[Record] = []
        for row in range(self._rows):
            record: Record = {}
            for field in fields:
                if present[field][row]:
                    record[field] = columns[field][row]
            records.append(record)
        return records

    def borrow_records(self) -> List[Record]:
        """The rows as record dicts **without copying** when the batch
        still holds adopted records: the returned dicts are the
        adopted originals and must be treated as read-only (the
        adoption contract above).  Materialized or projecting batches
        fall back to :meth:`to_records`."""
        if self._records is not None and not self._project:
            return self._records
        return self.to_records()

    def iter_records(self) -> Iterator[Record]:
        for row in range(self._rows):
            yield self.record_at(row)

    # -- positional operators ------------------------------------------------

    def take(self, positions: Sequence[int]) -> "RecordBatch":
        """A new batch gathering the given row positions, in order."""
        if self._records is not None:
            rows = self._records
            return RecordBatch(
                self._fields,
                {},
                {},
                len(positions),
                records=[rows[p] for p in positions],
                project=self._project,
            )
        columns: Dict[str, List[Any]] = {}
        present: Dict[str, List[bool]] = {}
        for field in self._fields:
            source_values = self._columns[field]
            source_present = self._present[field]
            columns[field] = [source_values[p] for p in positions]
            present[field] = [source_present[p] for p in positions]
        return RecordBatch(
            self._fields, columns, present, len(positions)
        )

    def filter(self, mask: Sequence[bool]) -> "RecordBatch":
        """Rows whose mask entry is truthy, order preserved."""
        if len(mask) != self._rows:
            raise ValueError(
                f"mask has {len(mask)} entries for {self._rows} rows"
            )
        return self.take(
            [row for row in range(self._rows) if mask[row]]
        )

    def extend_fields(self, fields: Iterable[str]) -> "RecordBatch":
        """A batch that also carries the named (all-absent) fields."""
        added = [
            field for field in fields if field not in self._field_set
        ]
        if not added:
            return self
        self._materialize()
        columns = dict(self._columns)
        present = dict(self._present)
        for field in added:
            columns[field] = [None] * self._rows
            present[field] = [False] * self._rows
        return RecordBatch(
            self._fields + tuple(added), columns, present, self._rows
        )

    # -- serialization (artifact payloads) -----------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A plain-data, picklable snapshot of this batch."""
        columns: Dict[str, List[Any]] = {}
        present: Dict[str, List[bool]] = {}
        for field in self._fields:
            pair = self._pair(field)
            assert pair is not None  # every own field resolves
            columns[field] = list(pair[0])
            present[field] = list(pair[1])
        return {
            "schema": BATCH_PAYLOAD_SCHEMA,
            "fields": list(self._fields),
            "columns": columns,
            "present": present,
            "rows": self._rows,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RecordBatch":
        if payload.get("schema") != BATCH_PAYLOAD_SCHEMA:
            raise ValueError(
                f"unsupported batch payload schema "
                f"{payload.get('schema')!r}"
            )
        fields = tuple(payload["fields"])
        return cls(
            fields,
            {field: list(payload["columns"][field]) for field in fields},
            {field: list(payload["present"][field]) for field in fields},
            int(payload["rows"]),
        )
