"""Seeded synthetic protein data tied to a locus population."""

from repro.sources.swissprotlike.record import ProteinRecord
from repro.util.rng import DeterministicRng

_KEYWORDS = (
    "Transcription",
    "Nuclear protein",
    "Kinase",
    "Receptor",
    "Membrane",
    "Phosphoprotein",
    "Zinc-finger",
    "Signal",
    "Disease mutation",
    "Alternative splicing",
)

_NAME_PATTERNS = (
    "Protein {symbol}",
    "{symbol} kinase homolog",
    "Putative {symbol} receptor",
    "Uncharacterized protein {symbol}",
)


class ProteinGenerator:
    """Generate synthetic :class:`ProteinRecord` populations.

    Each protein encodes one locus from the supplied population; a
    controllable fraction carries only the gene symbol (no curated
    LocusID cross-reference), mirroring real curation lag.
    """

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else DeterministicRng(0)

    def generate(self, loci, coverage=0.6, uncurated_rate=0.3):
        """Proteins for roughly ``coverage`` of ``loci``.

        ``loci`` is a list of
        :class:`~repro.sources.locuslink.LocusRecord`.
        """
        records = []
        used_accessions = set()
        for locus in loci:
            if not self._rng.bernoulli(coverage):
                continue
            accession = self._unique_accession(used_accessions)
            pattern = self._rng.choice(_NAME_PATTERNS)
            keyword_count = self._rng.randint(1, 4)
            curated = not self._rng.bernoulli(uncurated_rate)
            records.append(
                ProteinRecord(
                    accession=accession,
                    protein_name=pattern.format(symbol=locus.symbol),
                    organism=locus.organism,
                    gene_symbol=locus.symbol,
                    locus_id=locus.locus_id if curated else 0,
                    sequence_length=self._rng.randint(80, 3000),
                    keywords=sorted(
                        self._rng.sample(list(_KEYWORDS), keyword_count)
                    ),
                )
            )
        return records

    def _unique_accession(self, used):
        while True:
            letter = self._rng.choice("OPQ")
            digits = "".join(
                str(self._rng.randint(0, 9)) for _ in range(5)
            )
            accession = f"{letter}{digits}"
            if accession not in used:
                used.add(accession)
                return accession
