"""The protein record model of the SwissProt-like source."""

import re
from dataclasses import dataclass, field

from repro.util.errors import DataFormatError

_ACCESSION = re.compile(r"^[OPQ]\d[A-Z0-9]{3}\d$")


@dataclass
class ProteinRecord:
    """One protein entry.

    Attributes
    ----------
    accession:
        SwissProt-style accession (``P12345``), the primary key.
    protein_name:
        Recommended protein name.
    organism:
        Species name.
    gene_symbol:
        Symbol of the encoding gene (the cross-link to LocusLink).
    locus_id:
        LocusID of the encoding gene when curated (0 = not curated).
    sequence_length:
        Amino-acid count.
    keywords:
        Controlled-vocabulary keywords.
    """

    accession: str
    protein_name: str
    organism: str
    gene_symbol: str = ""
    locus_id: int = 0
    sequence_length: int = 0
    keywords: list = field(default_factory=list)

    def __post_init__(self):
        if not _ACCESSION.match(self.accession):
            raise DataFormatError(
                f"malformed accession {self.accession!r} "
                "(expected e.g. P12345)"
            )
        if not self.protein_name:
            raise DataFormatError(
                f"protein {self.accession} has an empty name"
            )
        if self.sequence_length < 0:
            raise DataFormatError(
                f"protein {self.accession} has negative length"
            )

    def web_link(self):
        return f"http://www.expasy.org/cgi-bin/niceprot.pl?{self.accession}"

    def as_dict(self):
        return {
            "Accession": self.accession,
            "ProteinName": self.protein_name,
            "Organism": self.organism,
            "GeneSymbol": self.gene_symbol,
            "LocusID": self.locus_id,
            "SequenceLength": self.sequence_length,
            "Keywords": list(self.keywords),
        }
