"""A SwissProt-flavoured protein source (source #5, model variety).

The paper's future work: *"The larger and more variety of molecular
and biological data models will be integrated to evaluate our proposed
ANNODA."*  This source adds that variety: protein records in a
UniProt/SwissProt-style two-letter line-code flat format, keyed by
accession (``P12345``), linked to genes by *both* gene symbol and
LocusID, carrying keyword vocabularies and sequence metadata no other
source has.
"""

from repro.sources.swissprotlike.generator import ProteinGenerator
from repro.sources.swissprotlike.record import ProteinRecord
from repro.sources.swissprotlike.store import (
    ProteinStore,
    parse_dat,
    write_dat,
)

__all__ = [
    "ProteinGenerator",
    "ProteinRecord",
    "ProteinStore",
    "parse_dat",
    "write_dat",
]
