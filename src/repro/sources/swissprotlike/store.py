"""SwissProt-style DAT format and store.

The classic two-letter line-code layout::

    ID   FOSB_HUMAN              Reviewed;         338 AA.
    AC   P53539
    DE   Protein fosB
    GN   FOSB
    OS   Homo sapiens
    DR   LocusLink; 2354
    KW   Transcription; Nuclear protein
    //

``//`` terminates each entry.
"""

from repro.sources.base import DataSource
from repro.sources.swissprotlike.record import ProteinRecord
from repro.util.errors import DataFormatError

_SOURCE = "SwissProt DAT"


def write_dat(records):
    """Serialize protein records to DAT text."""
    chunks = []
    for record in records:
        entry_name = (
            f"{record.gene_symbol or record.accession}_"
            f"{_species_code(record.organism)}"
        )
        lines = [
            f"ID   {entry_name:<24}Reviewed;{record.sequence_length:>10} AA."
        ]
        lines.append(f"AC   {record.accession}")
        lines.append(f"DE   {record.protein_name}")
        if record.gene_symbol:
            lines.append(f"GN   {record.gene_symbol}")
        lines.append(f"OS   {record.organism}")
        if record.locus_id:
            lines.append(f"DR   LocusLink; {record.locus_id}")
        if record.keywords:
            lines.append("KW   " + "; ".join(record.keywords))
        lines.append("//")
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + ("\n" if chunks else "")


def parse_dat(text):
    """Parse DAT text into a list of :class:`ProteinRecord`."""
    records = []
    current = None
    current_line = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line == "//":
            if current is None:
                raise DataFormatError(
                    "entry terminator without an entry",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            records.append(_finish(current, current_line))
            current = None
            continue
        if len(line) < 5 or line[2:5] != "   ":
            raise DataFormatError(
                f"expected 'XX   value', got {line!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        code = line[:2]
        value = line[5:].strip()
        if code == "ID":
            if current is not None:
                raise DataFormatError(
                    "new ID line before '//' terminator",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current = {"sequence_length": _parse_length(value, line_number)}
            current_line = line_number
            continue
        if current is None:
            raise DataFormatError(
                "field line before the first ID",
                line_number=line_number,
                source_name=_SOURCE,
            )
        if code == "AC":
            current["accession"] = value
        elif code == "DE":
            current["protein_name"] = value
        elif code == "GN":
            current["gene_symbol"] = value
        elif code == "OS":
            current["organism"] = value
        elif code == "DR":
            database, _, reference = value.partition(";")
            if database.strip() == "LocusLink":
                reference = reference.strip().rstrip(".")
                if not reference.isdigit():
                    raise DataFormatError(
                        f"bad LocusLink cross-reference {value!r}",
                        line_number=line_number,
                        source_name=_SOURCE,
                    )
                current["locus_id"] = int(reference)
        elif code == "KW":
            current.setdefault("keywords", []).extend(
                keyword.strip().rstrip(".")
                for keyword in value.split(";")
                if keyword.strip()
            )
        # Unknown line codes (SQ, FT, ...) are tolerated.
    if current is not None:
        raise DataFormatError(
            "last entry is missing its '//' terminator",
            line_number=current_line,
            source_name=_SOURCE,
        )
    return records


def _parse_length(id_value, line_number):
    parts = id_value.split()
    for index, part in enumerate(parts):
        if part == "AA." and index > 0 and parts[index - 1].isdigit():
            return int(parts[index - 1])
    raise DataFormatError(
        f"ID line carries no 'N AA.' length: {id_value!r}",
        line_number=line_number,
        source_name=_SOURCE,
    )


def _finish(fields, line_number):
    try:
        return ProteinRecord(**fields)
    except (TypeError, DataFormatError) as exc:
        raise DataFormatError(
            f"invalid entry: {exc}",
            line_number=line_number,
            source_name=_SOURCE,
        ) from exc


def _species_code(organism):
    upper = organism.upper().split()
    if len(upper) >= 2:
        return (upper[0][:3] + upper[1][:2])[:5]
    return (upper[0][:5] if upper else "UNKNW")


class ProteinStore(DataSource):
    """In-memory DAT-backed store of :class:`ProteinRecord`."""

    name = "SwissProt"

    _FIELDS = (
        "Accession",
        "ProteinName",
        "Organism",
        "GeneSymbol",
        "LocusID",
        "SequenceLength",
        "Keywords",
    )

    _CAPABILITIES = frozenset(
        {
            ("Accession", "="),
            ("ProteinName", "contains"),
            ("Organism", "="),
            ("GeneSymbol", "="),
            ("LocusID", "="),
            ("SequenceLength", "<"),
            ("SequenceLength", "<="),
            ("SequenceLength", ">"),
            ("SequenceLength", ">="),
            ("SequenceLength", "="),
            ("Keywords", "="),
            ("Keywords", "contains"),
        }
    )

    #: Hash-indexed fields: the accession key, the locus back-reference
    #: the reverse join probes, symbols, organisms, and keywords.
    #: ``SequenceLength`` stays scan-only: it is queried by range, and
    #: an equality index cannot serve range predicates.
    _INDEXED_FIELDS = (
        "Accession",
        "Organism",
        "GeneSymbol",
        "LocusID",
        "Keywords",
    )

    def indexed_fields(self):
        return self._INDEXED_FIELDS

    def __init__(self, records=(), index_state=None):
        self._by_accession = {}
        self._by_locus = {}
        self._version = 0
        for record in records:
            self.add(record)
        self._adopt_or_warn(index_state)

    # -- DataSource contract --------------------------------------------------

    def fields(self):
        return self._FIELDS

    def capabilities(self):
        return self._CAPABILITIES

    def records(self):
        return [
            self._by_accession[key].as_dict()
            for key in sorted(self._by_accession)
        ]

    def count(self):
        return len(self._by_accession)

    @property
    def version(self):
        return self._version

    # -- store operations -------------------------------------------------------

    def add(self, record):
        if record.accession in self._by_accession:
            raise DataFormatError(
                f"duplicate accession {record.accession}",
                source_name=self.name,
            )
        self._by_accession[record.accession] = record
        if record.locus_id:
            self._by_locus.setdefault(record.locus_id, []).append(record)
        self._version += 1

    def get(self, accession):
        return self._by_accession.get(accession)

    def by_locus(self, locus_id):
        """Proteins whose DR line references ``locus_id``."""
        return list(self._by_locus.get(locus_id, ()))

    def all_records(self):
        return [
            self._by_accession[key] for key in sorted(self._by_accession)
        ]

    def dump(self):
        return write_dat(self.all_records())

    @classmethod
    def from_text(cls, text, index_state=None):
        return cls(parse_dat(text), index_state=index_state)
