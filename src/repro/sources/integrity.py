"""Cross-source integrity auditing.

The paper's introduction lists as a benefit of integration that it
*"will facilitate the cross-validation of data obtained by different
data sources"*.  This module is that facility: given the loaded
stores, it audits every cross-reference between them and reports each
finding — dangling GO annotations, annotations to obsolete terms,
dangling MIM references, OMIM symbols that match no locus (exactly or
under case/alias reconciliation), protein back-references to missing
loci, citations of missing loci.

Exposed on the CLI as ``python -m repro validate``.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One cross-validation finding."""

    kind: str
    source: str
    record_id: object
    detail: str

    def render(self):
        return f"[{self.kind}] {self.source} {self.record_id}: {self.detail}"


@dataclass
class IntegrityReport:
    """All findings of one audit, with counters."""

    findings: list = field(default_factory=list)
    checked_references: int = 0

    def add(self, kind, source, record_id, detail):
        self.findings.append(
            Finding(kind=kind, source=source, record_id=record_id,
                    detail=detail)
        )

    def count(self, kind=None):
        if kind is None:
            return len(self.findings)
        return sum(1 for finding in self.findings if finding.kind == kind)

    def kinds(self):
        return sorted({finding.kind for finding in self.findings})

    def render(self, limit=20):
        lines = [
            f"cross-source integrity audit: {self.checked_references} "
            f"references checked, {len(self.findings)} findings"
        ]
        for kind in self.kinds():
            lines.append(f"  {kind}: {self.count(kind)}")
        shown = self.findings[:limit]
        if shown:
            lines.append("")
            lines.extend(f"  {finding.render()}" for finding in shown)
            if len(self.findings) > limit:
                lines.append(
                    f"  ... and {len(self.findings) - limit} more"
                )
        return "\n".join(lines)


class IntegrityAuditor:
    """Audit the cross-references of a set of loaded stores.

    ``stores`` is a mapping ``{source name: store}`` as produced by
    :func:`repro.sources.persistence.load_stores`; any subset of the
    five known sources works, and only the references whose target
    source is present are audited.
    """

    def __init__(self, stores):
        self.stores = dict(stores)

    def audit(self):
        report = IntegrityReport()
        locuslink = self.stores.get("LocusLink")
        go = self.stores.get("GO")
        omim = self.stores.get("OMIM")
        pubmed = self.stores.get("PubMed")
        swissprot = self.stores.get("SwissProt")

        if locuslink is not None and go is not None:
            self._audit_go_annotations(locuslink, go, report)
        if locuslink is not None and omim is not None:
            self._audit_omim_references(locuslink, omim, report)
            self._audit_omim_symbols(locuslink, omim, report)
        if locuslink is not None and pubmed is not None:
            self._audit_citations(locuslink, pubmed, report)
        if locuslink is not None and swissprot is not None:
            self._audit_proteins(locuslink, swissprot, report)
        return report

    # -- per-pair audits ----------------------------------------------------

    @staticmethod
    def _audit_go_annotations(locuslink, go, report):
        for record in locuslink.all_records():
            for go_id in record.go_ids:
                report.checked_references += 1
                term = go.get(go_id)
                if term is None:
                    report.add(
                        "dangling_go_annotation",
                        "LocusLink",
                        record.locus_id,
                        f"annotates missing term {go_id}",
                    )
                elif term.obsolete:
                    report.add(
                        "obsolete_go_annotation",
                        "LocusLink",
                        record.locus_id,
                        f"annotates obsolete term {go_id} ({term.name})",
                    )

    @staticmethod
    def _audit_omim_references(locuslink, omim, report):
        for record in locuslink.all_records():
            for mim in record.omim_ids:
                report.checked_references += 1
                if omim.get(mim) is None:
                    report.add(
                        "dangling_omim_reference",
                        "LocusLink",
                        record.locus_id,
                        f"references missing MIM {mim}",
                    )

    @staticmethod
    def _audit_omim_symbols(locuslink, omim, report):
        official = {}
        lowered = {}
        aliases = {}
        for record in locuslink.all_records():
            official.setdefault(record.symbol, record.locus_id)
            lowered.setdefault(record.symbol.lower(), record.locus_id)
            for alias in record.aliases:
                aliases.setdefault(alias, record.locus_id)
                aliases.setdefault(alias.lower(), record.locus_id)
        for entry in omim.all_records():
            for symbol in entry.gene_symbols:
                report.checked_references += 1
                if symbol in official:
                    continue
                if symbol.lower() in lowered:
                    report.add(
                        "case_variant_symbol",
                        "OMIM",
                        entry.mim_number,
                        (
                            f"lists {symbol!r}; official spelling "
                            "differs only in case"
                        ),
                    )
                elif symbol in aliases or symbol.lower() in aliases:
                    report.add(
                        "alias_symbol",
                        "OMIM",
                        entry.mim_number,
                        f"lists alias {symbol!r} instead of the "
                        "official symbol",
                    )
                else:
                    report.add(
                        "unknown_symbol",
                        "OMIM",
                        entry.mim_number,
                        f"lists {symbol!r}, matching no locus",
                    )

    @staticmethod
    def _audit_citations(locuslink, pubmed, report):
        for citation in pubmed.all_citations():
            for locus_id in citation.locus_ids:
                report.checked_references += 1
                if locuslink.get(locus_id) is None:
                    report.add(
                        "dangling_citation_link",
                        "PubMed",
                        citation.pmid,
                        f"cites missing locus {locus_id}",
                    )

    @staticmethod
    def _audit_proteins(locuslink, swissprot, report):
        for protein in swissprot.all_records():
            if not protein.locus_id:
                continue
            report.checked_references += 1
            locus = locuslink.get(protein.locus_id)
            if locus is None:
                report.add(
                    "dangling_protein_link",
                    "SwissProt",
                    protein.accession,
                    f"cross-references missing locus {protein.locus_id}",
                )
            elif locus.symbol != protein.gene_symbol:
                report.add(
                    "symbol_disagreement",
                    "SwissProt",
                    protein.accession,
                    (
                        f"GN {protein.gene_symbol!r} disagrees with "
                        f"locus {protein.locus_id} symbol "
                        f"{locus.symbol!r}"
                    ),
                )
