"""MEDLINE-tagged format and store for the PubMed-like source.

The format is the classic MEDLINE tagged layout::

    PMID- 8889548
    TI  - Induction of osteosarcoma transformation by FosB.
    TA  - Nature
    DP  - 1996
    LID - 2354
    LID - 2360

Blank lines separate citations.
"""

from repro.sources.base import DataSource
from repro.sources.pubmedlike.citation import Citation
from repro.util.errors import DataFormatError

_SOURCE = "MEDLINE"


def write_medline(citations):
    """Serialize citations to MEDLINE-tagged text."""
    chunks = []
    for citation in citations:
        lines = [f"PMID- {citation.pmid}"]
        lines.append(f"TI  - {citation.title}")
        lines.append(f"TA  - {citation.journal}")
        lines.append(f"DP  - {citation.year}")
        for locus_id in citation.locus_ids:
            lines.append(f"LID - {locus_id}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def parse_medline(text):
    """Parse MEDLINE-tagged text into a list of :class:`Citation`."""
    citations = []
    current = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            if current is not None:
                citations.append(_finish(current, line_number))
                current = None
            continue
        if len(line) < 6 or line[4] != "-":
            raise DataFormatError(
                f"expected 'TAG - value', got {line!r}",
                line_number=line_number,
                source_name=_SOURCE,
            )
        tag = line[:4].strip()
        value = line[5:].strip()
        if tag == "PMID":
            if current is not None:
                citations.append(_finish(current, line_number))
            if not value.isdigit():
                raise DataFormatError(
                    f"PMID must be numeric, got {value!r}",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current = {"pmid": int(value)}
            continue
        if current is None:
            raise DataFormatError(
                "field line before the first PMID",
                line_number=line_number,
                source_name=_SOURCE,
            )
        if tag == "TI":
            current["title"] = value
        elif tag == "TA":
            current["journal"] = value
        elif tag == "DP":
            if not value.isdigit():
                raise DataFormatError(
                    f"DP must be a year, got {value!r}",
                    line_number=line_number,
                    source_name=_SOURCE,
                )
            current["year"] = int(value)
        elif tag == "LID":
            current.setdefault("locus_ids", []).append(int(value))
        # Unknown MEDLINE tags are tolerated.
    if current is not None:
        citations.append(_finish(current, line_number))
    return citations


def _finish(fields, line_number):
    try:
        return Citation(**fields)
    except (TypeError, DataFormatError) as exc:
        raise DataFormatError(
            f"invalid citation: {exc}",
            line_number=line_number,
            source_name=_SOURCE,
        ) from exc


class CitationStore(DataSource):
    """In-memory MEDLINE-backed store of :class:`Citation`."""

    name = "PubMed"

    _FIELDS = ("Pmid", "Title", "Journal", "Year", "LocusIDs")

    _CAPABILITIES = frozenset(
        {
            ("Pmid", "="),
            ("Title", "contains"),
            ("Journal", "="),
            ("Year", "="),
            ("Year", "<"),
            ("Year", ">"),
            ("Year", "<="),
            ("Year", ">="),
            ("LocusIDs", "="),
        }
    )

    #: Hash-indexed fields: the PMID key, the locus back-references the
    #: reverse join probes, plus the low-cardinality journal/year pair.
    _INDEXED_FIELDS = ("Pmid", "Journal", "Year", "LocusIDs")

    def indexed_fields(self):
        return self._INDEXED_FIELDS

    def __init__(self, citations=(), index_state=None):
        self._by_pmid = {}
        self._by_locus = {}
        self._version = 0
        for citation in citations:
            self.add(citation)
        self._adopt_or_warn(index_state)

    # -- DataSource contract ---------------------------------------------------

    def fields(self):
        return self._FIELDS

    def capabilities(self):
        return self._CAPABILITIES

    def records(self):
        return [self._by_pmid[key].as_dict() for key in sorted(self._by_pmid)]

    def count(self):
        return len(self._by_pmid)

    @property
    def version(self):
        return self._version

    # -- store operations -----------------------------------------------------

    def add(self, citation):
        if citation.pmid in self._by_pmid:
            raise DataFormatError(
                f"duplicate PMID {citation.pmid}", source_name=self.name
            )
        self._by_pmid[citation.pmid] = citation
        for locus_id in citation.locus_ids:
            self._by_locus.setdefault(locus_id, []).append(citation)
        self._version += 1

    def get(self, pmid):
        return self._by_pmid.get(pmid)

    def by_locus(self, locus_id):
        """Citations annotating a locus."""
        return list(self._by_locus.get(locus_id, ()))

    def all_citations(self):
        return [self._by_pmid[key] for key in sorted(self._by_pmid)]

    def dump(self):
        return write_medline(self.all_citations())

    @classmethod
    def from_text(cls, text, index_state=None):
        return cls(parse_medline(text), index_state=index_state)
