"""Seeded synthetic citation data for the PubMed-like source."""

from repro.sources.pubmedlike.citation import Citation
from repro.util.rng import DeterministicRng

_JOURNALS = (
    "Nature",
    "Science",
    "Cell",
    "Nucleic Acids Res",
    "J Biol Chem",
    "Genomics",
    "Hum Mol Genet",
)

_TITLE_WORDS = (
    "expression",
    "analysis",
    "of",
    "the",
    "human",
    "gene",
    "family",
    "identifies",
    "novel",
    "regulatory",
    "elements",
    "during",
    "development",
    "in",
    "disease",
)


class CitationGenerator:
    """Generate synthetic :class:`Citation` populations."""

    def __init__(self, rng=None):
        self._rng = rng if rng is not None else DeterministicRng(0)

    def generate(self, count, locus_ids, start_pmid=8000000):
        """``count`` citations, each annotating 1-3 loci drawn from
        ``locus_ids`` (empty list allowed: citation with no links)."""
        citations = []
        pmid = start_pmid
        pool = list(locus_ids)
        for _ in range(count):
            pmid += self._rng.randint(1, 50)
            linked = []
            if pool:
                link_count = self._rng.randint(1, min(3, len(pool)))
                linked = sorted(self._rng.sample(pool, link_count))
            citations.append(
                Citation(
                    pmid=pmid,
                    title=self._rng.sentence(_TITLE_WORDS, 5, 10) + ".",
                    journal=self._rng.choice(_JOURNALS),
                    year=self._rng.randint(1985, 2005),
                    locus_ids=linked,
                )
            )
        return citations
