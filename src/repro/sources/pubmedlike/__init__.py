"""A PubMed-flavoured citation source (source #4, used for extensibility).

The paper requires that *"a new annotation data source should be
plugged in as it comes into existence"*.  This subpackage is that new
source: MEDLINE-tagged citation records linked to loci by PMID.  It is
deliberately *not* wired into the default corpus — the extensibility
experiment plugs it in at run time.
"""

from repro.sources.pubmedlike.citation import Citation
from repro.sources.pubmedlike.generator import CitationGenerator
from repro.sources.pubmedlike.store import CitationStore, parse_medline, write_medline

__all__ = [
    "Citation",
    "CitationGenerator",
    "CitationStore",
    "parse_medline",
    "write_medline",
]
