"""The citation record model of the PubMed-like source."""

from dataclasses import dataclass, field

from repro.util.errors import DataFormatError


@dataclass
class Citation:
    """One literature citation.

    Attributes
    ----------
    pmid:
        PubMed identifier, the source's primary key.
    title:
        Article title.
    journal:
        Journal abbreviation.
    year:
        Publication year.
    locus_ids:
        LocusIDs the article annotates (the cross-link back to
        LocusLink).
    """

    pmid: int
    title: str
    journal: str
    year: int
    locus_ids: list = field(default_factory=list)

    def __post_init__(self):
        if not isinstance(self.pmid, int) or self.pmid < 1:
            raise DataFormatError(f"PMID must be positive, got {self.pmid!r}")
        if not self.title:
            raise DataFormatError(f"citation {self.pmid} has an empty title")
        if not (1950 <= self.year <= 2010):
            raise DataFormatError(
                f"citation {self.pmid} year {self.year} outside 1950-2010"
            )

    def web_link(self):
        return (
            "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
            f"?cmd=Retrieve&db=PubMed&list_uids={self.pmid}"
        )

    def as_dict(self):
        return {
            "Pmid": self.pmid,
            "Title": self.title,
            "Journal": self.journal,
            "Year": self.year,
            "LocusIDs": list(self.locus_ids),
        }
