"""Key-range sharding behind the :class:`DataSource` contract.

Multidatabase federations scale by partitioning local extents across
nodes while keeping the global view stable.  This module brings that
shape to the flat-file stores without touching their callers:

- :class:`SourceShard` — one frozen key-range partition of a store's
  extent, itself a full :class:`~repro.sources.base.DataSource`, so it
  inherits the version-keyed equality indexes, the columnar extent
  cache and the ``export_index_state``/``adopt_index_state`` snapshot
  machinery per shard for free.
- :class:`ShardedSource` — the facade a wrapper plugs in instead of
  the base store.  It satisfies the whole contract (``native_query``,
  ``native_query_batch``, index-state export/adopt, ``fetch_stats``),
  delegating un-partitioned concerns (``records``, ``count``,
  ``version``, store mutation, ontology navigation) straight to the
  base store, so wrappers, artifact keys and the columnar path work
  unchanged.

Equivalence guarantee
---------------------
Shards are *contiguous ranges of the store's canonical record order*
(the flat-file stores enumerate ``records()`` in sorted key order, so
the ranges are key ranges).  Both native-query paths of the base
contract preserve that order — the index path returns matches in
sorted-position order, the scan path in ``records()`` order — so
concatenating the per-shard results of any condition list in shard
order reproduces the unsharded result byte for byte.  The shard
equivalence property suite pins this down for every catalog question.

Freshness
---------
Partitions are keyed on the *base* store's version counter and rebuilt
lazily under the facade's fetch mutex whenever it moves, exactly like
the base contract's index state; ``ShardedSource.version`` delegates
to the base store, so every version-keyed cache above the wrapper
boundary (result cache, artifact keys, GML) invalidates unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sources.base import (
    FETCH_COUNTER_SCHEMA,
    INDEX_STATE_SCHEMA,
    DataSource,
    NativeCondition,
    Record,
)
from repro.sources.batch import RecordBatch


class SourceShard(DataSource):
    """One frozen key-range partition of a store's extent.

    A shard is a snapshot: its records, schema and capabilities are
    fixed at partition time and its ``version`` never moves (the
    owning :class:`ShardedSource` replaces the whole shard set when
    the base store mutates).  Inheriting :class:`DataSource` gives it
    the per-shard equality indexes, columnar extent cache, fetch
    counters and index-state snapshots.
    """

    def __init__(
        self,
        name: str,
        fields: Sequence[str],
        capabilities: Iterable[Tuple[str, str]],
        indexed: Sequence[str],
        records: Sequence[Record],
        version: int = 1,
    ) -> None:
        self.name = name
        self._fields = tuple(fields)
        self._capabilities = frozenset(capabilities)
        self._indexed = tuple(indexed)
        self._records = list(records)
        self._version = version

    def fields(self) -> Sequence[str]:
        return self._fields

    def capabilities(self) -> Iterable[Tuple[str, str]]:
        return self._capabilities

    def indexed_fields(self) -> Tuple[str, ...]:
        # Snapshot of the base store's eligibility, so the per-shard
        # index/scan driver decision matches the unsharded one.
        return self._indexed

    def records(self) -> List[Record]:
        # Fresh dict copies, exactly the base stores' behaviour: the
        # partition's backing dicts never alias records a caller may
        # mutate (the per-shard index snapshot depends on that).
        return [dict(record) for record in self._records]

    def count(self) -> int:
        return len(self._records)

    @property
    def version(self) -> int:
        return self._version


class ShardedSource(DataSource):
    """A key-range sharded facade over one base store.

    Implements the full :class:`DataSource` contract by fanning every
    native query over its shard partitions and concatenating in shard
    order (byte-identical to the base store — see the module
    docstring), and exposes the per-shard surface the stage scheduler
    places fetches on:

    - :attr:`shard_count` / :meth:`shard` — the partition grid;
    - :meth:`shard_query` / :meth:`shard_query_batch` — one
      partition's slice of a native query (the wrapper routes
      shard-pinned :class:`~repro.mediator.fetch.FetchRequest`\\ s
      here);
    - :meth:`export_index_state` / :meth:`adopt_index_state` — a
      sharded envelope of per-shard snapshots, schema-gated exactly
      like the flat ``*.idx`` machinery it reuses.

    Everything the contract does not partition — ``records``,
    ``count``, ``version``, mutation methods, ontology navigation
    (``ancestors``/``descendants``), symbol lookups — delegates to the
    base store via ``__getattr__``, so existing wrappers plug a
    sharded source in without a single change.
    """

    def __init__(self, base: DataSource, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        self.shard_count = int(shard_count)
        self.name = base.name
        with self._fetch_mutex():
            self._base = base
            # Cumulative fetch counters of retired partitions, folded
            # in when a base mutation discards a shard set
            # (fetch_stats stays monotone across repartitions).
            self._shard_retired: Dict[str, int] = {}

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        base = self.__dict__.get("_base")
        if base is None:
            raise AttributeError(name)
        return getattr(base, name)

    # -- delegated contract ---------------------------------------------------

    def fields(self) -> Sequence[str]:
        return self._base.fields()

    def capabilities(self) -> Iterable[Tuple[str, str]]:
        return self._base.capabilities()

    def indexed_fields(self) -> Tuple[str, ...]:
        return self._base.indexed_fields()

    def records(self) -> List[Record]:
        return self._base.records()

    def count(self) -> int:
        return self._base.count()

    @property
    def version(self) -> int:
        return self._base.version

    # -- partitioning ---------------------------------------------------------

    def _shards_locked(self) -> List[SourceShard]:
        """The current shard set, (re)partitioned lazily whenever the
        base version moves; caller holds ``_fetch_mutex``."""
        state = self.__dict__.get("_shard_state")
        version = self._base.version
        if state is None or state["version"] != version:
            if state is not None:
                # Fold the dying partitions' counters into the retired
                # totals so fetch_stats never goes backwards.
                for shard in state["shards"]:
                    for key, value in shard.fetch_stats().items():
                        self._shard_retired[key] = (
                            self._shard_retired.get(key, 0) + value
                        )
            records = self._base.records()
            total = len(records)
            fields = tuple(self._base.fields())
            capabilities = frozenset(self._base.capabilities())
            indexed = tuple(self._base.indexed_fields())
            shards = []
            for index in range(self.shard_count):
                start = index * total // self.shard_count
                stop = (index + 1) * total // self.shard_count
                shards.append(
                    SourceShard(
                        f"{self.name}#shard{index}/{self.shard_count}",
                        fields,
                        capabilities,
                        indexed,
                        records[start:stop],
                        version=version,
                    )
                )
            state = {"version": version, "shards": shards}
            self._shard_state = state
        result: List[SourceShard] = state["shards"]
        return result

    def shards(self) -> List[SourceShard]:
        """The current shard set (a stable snapshot list)."""
        with self._fetch_mutex():
            return list(self._shards_locked())

    def shard(self, index: int) -> SourceShard:
        """One partition of the current grid."""
        return self.shards()[index]

    def _use_index(self, use_index: Optional[bool]) -> bool:
        # The base store's master switch drives every partition, so
        # benchmarks flipping ``use_indexes`` on the base store govern
        # the sharded path identically.
        if use_index is not None:
            return use_index
        return self._base.use_indexes

    # -- per-shard queries ----------------------------------------------------

    def shard_query(
        self,
        index: int,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> List[Record]:
        """One partition's slice of ``native_query(conditions)``."""
        return self.shard(index).native_query(
            conditions, use_index=self._use_index(use_index)
        )

    def shard_query_batch(
        self,
        index: int,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> RecordBatch:
        """One partition's slice of ``native_query_batch``."""
        return self.shard(index).native_query_batch(
            conditions, use_index=self._use_index(use_index)
        )

    # -- whole-extent queries (shard-order concatenation) ---------------------

    def native_query(
        self,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> List[Record]:
        conditions = list(conditions)
        matched: List[Record] = []
        for index in range(self.shard_count):
            matched.extend(
                self.shard_query(index, conditions, use_index=use_index)
            )
        return matched

    def native_query_batch(
        self,
        conditions: Iterable[NativeCondition] = (),
        use_index: Optional[bool] = None,
    ) -> RecordBatch:
        conditions = list(conditions)
        return RecordBatch.concat(
            [
                self.shard_query_batch(
                    index, conditions, use_index=use_index
                )
                for index in range(self.shard_count)
            ]
        )

    # -- sharded index snapshots ----------------------------------------------

    def export_index_state(self) -> Dict[str, Any]:
        """A sharded snapshot envelope: the flat machinery's schema
        gates (``schema``, ``counter_schema``, ``source``,
        ``record_count``) plus the grid width and one per-shard
        export under ``shards``."""
        shards = self.shards()
        return {
            "schema": INDEX_STATE_SCHEMA,
            "counter_schema": FETCH_COUNTER_SCHEMA,
            "source": self.name,
            "version": self.version,
            "record_count": self.count(),
            "shard_count": self.shard_count,
            "shards": [shard.export_index_state() for shard in shards],
        }

    def adopt_index_state(self, state: Any) -> bool:
        """Install a sharded snapshot produced by
        :meth:`export_index_state` over an identical extent.

        Validates the envelope (schema, counter-set, source name,
        record count, grid width) before touching anything, then
        adopts shard by shard — each partition re-validates its own
        part exactly like the flat machinery.  Returns ``False`` on
        any mismatch; partitions whose part failed rebuild their
        indexes lazily, which is always correct.
        """
        try:
            if state.get("schema") != INDEX_STATE_SCHEMA:
                return False
            if state.get("counter_schema", 0) > FETCH_COUNTER_SCHEMA:
                return False
            if state.get("source") != self.name:
                return False
            if state.get("record_count") != self.count():
                return False
            if state.get("shard_count") != self.shard_count:
                return False
            parts = list(state["shards"])
        except (AttributeError, KeyError, TypeError, ValueError):
            return False
        if len(parts) != self.shard_count:
            return False
        shards = self.shards()
        adopted = [
            shard.adopt_index_state(part)
            for shard, part in zip(shards, parts)
        ]
        return all(adopted)

    # -- accounting -----------------------------------------------------------

    def fetch_stats(self) -> Dict[str, int]:
        """Cumulative fetch-path counters summed over the current
        partitions plus every retired partition set (monotone across
        repartitions)."""
        with self._fetch_mutex():
            shards = list(self._shards_locked())
            totals = dict(self._shard_retired)
        for shard in shards:
            for key, value in shard.fetch_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
