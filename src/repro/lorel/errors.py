"""Lorel-specific errors."""

from repro.util.errors import QueryError


class LorelSyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"at character {position}: {message}"
        super().__init__(message)


class LorelEvaluationError(QueryError):
    """The query parsed but could not be evaluated against the data."""
