"""Recursive-descent parser for Lorel select-from-where queries.

Grammar (keywords case-insensitive)::

    query       := select_query (set_op select_query)?
    set_op      := 'union' | 'except' | 'intersect'
    select_query:= 'select' ['distinct'] select_item (',' select_item)*
                   'from' from_clause (',' from_clause)*
                   ['where' or_expr]
    select_item := path ['as' NAME]
    from_clause := path NAME
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := unary_expr ('and' unary_expr)*
    unary_expr  := 'not' unary_expr | '(' or_expr ')' | predicate
    predicate   := 'exists' path
                 | path (op literal-or-path | 'like' STRING
                         | ['not'] 'in' value_list)
    path        := NAME ('.' NAME)*
    value_list  := '(' literal (',' literal)* ')'
"""

from repro.lorel.ast_nodes import (
    And,
    Comparison,
    Exists,
    FromClause,
    Literal,
    Not,
    Or,
    OrderBy,
    Path,
    Query,
    SelectItem,
    Subquery,
    ValueList,
)
from repro.lorel.errors import LorelSyntaxError
from repro.lorel.lexer import tokenize

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


def parse(text):
    """Parse query text into a :class:`~repro.lorel.ast_nodes.Query`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def _current(self):
        return self._tokens[self._index]

    def _advance(self):
        token = self._current
        self._index += 1
        return token

    def _check(self, kind, text=None):
        token = self._current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind, text=None):
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None, what=None):
        token = self._accept(kind, text)
        if token is None:
            expected = what or text or kind
            raise LorelSyntaxError(
                f"expected {expected}, found {self._current.text!r}",
                self._current.position,
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse_query(self):
        queries = [self._select_query()]
        ops = []
        while self._check("KEYWORD") and self._current.text in (
            "union",
            "except",
            "intersect",
        ):
            ops.append(self._advance().text)
            queries.append(self._select_query())
        self._expect("EOF", what="end of query")
        # Left-to-right chain: each query carries the operator linking it
        # to the next one (the evaluator walks set_operand links in order).
        for index in range(len(ops) - 1, -1, -1):
            left = queries[index]
            queries[index] = Query(
                select_items=left.select_items,
                from_clauses=left.from_clauses,
                where=left.where,
                distinct=left.distinct,
                order_by=left.order_by,
                set_op=ops[index],
                set_operand=queries[index + 1],
            )
        return queries[0]

    def _select_query(self):
        self._expect("KEYWORD", "select")
        distinct = self._accept("KEYWORD", "distinct") is not None
        select_items = [self._select_item()]
        while self._accept("COMMA"):
            select_items.append(self._select_item())
        self._expect("KEYWORD", "from")
        from_clauses = [self._from_clause()]
        while self._accept("COMMA"):
            from_clauses.append(self._from_clause())
        where = None
        if self._accept("KEYWORD", "where"):
            where = self._or_expr()
        order_by = None
        if self._accept("KEYWORD", "order"):
            self._expect("KEYWORD", "by")
            path = self._path()
            descending = False
            if self._accept("KEYWORD", "desc"):
                descending = True
            else:
                self._accept("KEYWORD", "asc")
            order_by = OrderBy(path=path, descending=descending)
        self._validate_variables(from_clauses, select_items)
        return Query(
            select_items=tuple(select_items),
            from_clauses=tuple(from_clauses),
            where=where,
            distinct=distinct,
            order_by=order_by,
        )

    def _validate_variables(self, from_clauses, select_items):
        declared = set()
        for clause in from_clauses:
            if clause.variable in declared:
                raise LorelSyntaxError(
                    f"range variable {clause.variable!r} declared twice"
                )
            declared.add(clause.variable)

    def _select_item(self):
        aggregate = None
        if self._accept("KEYWORD", "count"):
            self._expect("LPAREN", what="'(' after count")
            path = self._path()
            self._expect("RPAREN", what="')'")
            aggregate = "count"
        else:
            path = self._path()
        alias = None
        if self._accept("KEYWORD", "as"):
            alias = self._expect("NAME", what="alias name").text
        return SelectItem(path=path, alias=alias, aggregate=aggregate)

    def _from_clause(self):
        path = self._path()
        variable_token = self._accept("NAME")
        if variable_token is None:
            # 'from ANNODA-GML' with no explicit variable: the database
            # name itself becomes the range variable bound to its root.
            return FromClause(path=path, variable=path.unparse())
        return FromClause(path=path, variable=variable_token.text)

    def _path(self):
        first = self._expect("NAME", what="a path").text
        segments = []
        while self._accept("DOT"):
            # After a dot any word is a label — edge labels in
            # semi-structured data may collide with query keywords
            # ('order', 'count', ...).
            token = self._accept("NAME") or self._accept("KEYWORD")
            if token is None:
                self._expect("NAME", what="a path label")
            segments.append(token.text)
        return Path(base=first, segments=tuple(segments))

    # -- boolean expressions ---------------------------------------------------

    def _or_expr(self):
        left = self._and_expr()
        while self._accept("KEYWORD", "or"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._unary_expr()
        while self._accept("KEYWORD", "and"):
            left = And(left, self._unary_expr())
        return left

    def _unary_expr(self):
        if self._accept("KEYWORD", "not"):
            return Not(self._unary_expr())
        if self._accept("LPAREN"):
            inner = self._or_expr()
            self._expect("RPAREN")
            return inner
        return self._predicate()

    def _predicate(self):
        if self._accept("KEYWORD", "exists"):
            return Exists(self._path())
        left = self._operand()
        if self._check("OP") and self._current.text in _COMPARISON_OPS:
            op = self._advance().text
            if op == "<>":
                op = "!="
            right = self._operand()
            return Comparison(op=op, left=left, right=right)
        if self._accept("KEYWORD", "like"):
            pattern = self._expect("STRING", what="a like pattern")
            return Comparison(
                op="like", left=left, right=Literal(pattern.text)
            )
        if self._check("KEYWORD", "not") or self._check("KEYWORD", "in"):
            negated = self._accept("KEYWORD", "not") is not None
            self._expect("KEYWORD", "in")
            values = self._value_list()
            comparison = Comparison(op="in", left=left, right=values)
            return Not(comparison) if negated else comparison
        # A bare path is existential shorthand: 'where X.Links' means
        # the path must reach at least one object.
        if isinstance(left, Path):
            return Exists(left)
        raise LorelSyntaxError(
            f"expected a comparison after {left.unparse()}",
            self._current.position,
        )

    def _operand(self):
        literal = self._maybe_literal()
        if literal is not None:
            return literal
        return self._path()

    def _maybe_literal(self):
        token = self._current
        if token.kind == "STRING":
            self._advance()
            return Literal(token.text)
        if token.kind == "INTEGER":
            self._advance()
            return Literal(int(token.text))
        if token.kind == "REAL":
            self._advance()
            return Literal(float(token.text))
        if token.kind == "OID":
            self._advance()
            return Literal(int(token.text), is_oid=True)
        if token.kind == "KEYWORD" and token.text in ("true", "false"):
            self._advance()
            return Literal(token.text == "true")
        return None

    def _value_list(self):
        self._expect("LPAREN", what="'('")
        if self._check("KEYWORD", "select"):
            inner = self._select_query()
            self._expect("RPAREN", what="')' closing the subquery")
            return Subquery(query=inner)
        items = []
        literal = self._maybe_literal()
        if literal is None:
            raise LorelSyntaxError(
                "value list requires at least one literal",
                self._current.position,
            )
        items.append(literal)
        while self._accept("COMMA"):
            literal = self._maybe_literal()
            if literal is None:
                raise LorelSyntaxError(
                    "expected a literal after ','", self._current.position
                )
            items.append(literal)
        self._expect("RPAREN", what="')'")
        return ValueList(items=tuple(items))
