"""Abstract syntax tree of Lorel select-from-where queries.

Nodes carry no evaluation logic (that lives in
:mod:`repro.lorel.evaluator`); each node renders back to canonical
query text via ``unparse`` so tests can assert parse → unparse
round-trips.
"""

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Path:
    """A dotted path, optionally anchored at a range variable.

    ``X.Name`` has ``base="X"``, ``segments=("Name",)``; a bare variable
    ``X`` has empty segments.  In from-clauses the base is a database
    (root) name such as ``ANNODA-GML``.
    """

    base: str
    segments: tuple = ()

    def unparse(self):
        return ".".join((self.base,) + self.segments)

    @property
    def last_label(self):
        """The label a selected object is presented under (section 4.1:
        select results keep the final path label, e.g. ``Name``)."""
        return self.segments[-1] if self.segments else self.base


@dataclass(frozen=True)
class Literal:
    """A constant: string, integer, real, boolean or oid."""

    value: object
    is_oid: bool = False

    def unparse(self):
        if self.is_oid:
            return f"&{self.value}"
        if isinstance(self.value, str):
            return "\"" + self.value.replace("\"", "\"\"") + "\""
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class ValueList:
    """A parenthesized literal list, the right side of ``in``."""

    items: tuple

    def unparse(self):
        return "(" + ", ".join(item.unparse() for item in self.items) + ")"


@dataclass(frozen=True)
class Subquery:
    """A parenthesized select query, the right side of ``in``.

    Uncorrelated: the inner query's paths resolve against database
    roots, not the outer query's variables.
    """

    query: "Query"

    def unparse(self):
        return f"({self.query.unparse()})"


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in =, !=, <, <=, >, >=, like, in."""

    op: str
    left: object
    right: object

    def unparse(self):
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass(frozen=True)
class Exists:
    """``exists path`` — true when the path matches at least one object."""

    path: Path

    def unparse(self):
        return f"exists {self.path.unparse()}"


@dataclass(frozen=True)
class Not:
    operand: object

    def unparse(self):
        return f"not ({self.operand.unparse()})"


@dataclass(frozen=True)
class And:
    left: object
    right: object

    def unparse(self):
        return f"({self.left.unparse()} and {self.right.unparse()})"


@dataclass(frozen=True)
class Or:
    left: object
    right: object

    def unparse(self):
        return f"({self.left.unparse()} or {self.right.unparse()})"


@dataclass(frozen=True)
class SelectItem:
    """One projection: a path with an optional ``as`` alias.

    ``aggregate`` is ``"count"`` for ``count(path)`` items, which
    produce one new Integer object per query instead of one object per
    binding.
    """

    path: Path
    alias: Optional[str] = None
    aggregate: Optional[str] = None

    @property
    def label(self):
        if self.alias:
            return self.alias
        if self.aggregate:
            return self.aggregate
        return self.path.last_label

    def unparse(self):
        text = self.path.unparse()
        if self.aggregate:
            text = f"{self.aggregate}({text})"
        if self.alias:
            text = f"{text} as {self.alias}"
        return text


@dataclass(frozen=True)
class OrderBy:
    """Result ordering: sort the answer's edges by a path's value."""

    path: Path
    descending: bool = False

    def unparse(self):
        direction = "desc" if self.descending else "asc"
        return f"order by {self.path.unparse()} {direction}"


@dataclass(frozen=True)
class FromClause:
    """One range declaration: ``path variable`` (the variable ranges
    over every object the path reaches)."""

    path: Path
    variable: str

    def unparse(self):
        return f"{self.path.unparse()} {self.variable}"


@dataclass(frozen=True)
class Query:
    """A full select-from-where query."""

    select_items: tuple
    from_clauses: tuple
    where: object = None
    distinct: bool = False
    order_by: Optional[OrderBy] = None
    set_op: Optional[str] = None
    set_operand: Optional["Query"] = None

    def unparse(self):
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        parts.append(", ".join(item.unparse() for item in self.select_items))
        parts.append("from")
        parts.append(", ".join(fc.unparse() for fc in self.from_clauses))
        if self.where is not None:
            parts.append("where")
            parts.append(self.where.unparse())
        if self.order_by is not None:
            parts.append(self.order_by.unparse())
        text = " ".join(parts)
        if self.set_op is not None:
            text = f"{text} {self.set_op} {self.set_operand.unparse()}"
        return text

    def variables(self):
        """All range variables declared by the from-clauses, in order."""
        return [fc.variable for fc in self.from_clauses]
