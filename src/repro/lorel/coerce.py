"""Value coercion for Lorel comparisons.

Semi-structured data is irregular: *"similar concepts are represented
using different types"* (paper section 4.1).  Lorel therefore compares
across atomic types with coercion — the LocusID stored as the string
``"2354"`` compares equal to the integer ``2354``.  Comparisons that
cannot be coerced are simply *false* (never an error), matching
Lorel's forgiving semantics over partially known structure.
"""

import re


def comparable_pair(left, right):
    """Coerce two atomic Python values to a comparable pair.

    Returns ``None`` when no sensible coercion exists (e.g. bytes vs
    int), in which case any comparison is false.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        left_bool = _as_bool(left)
        right_bool = _as_bool(right)
        if left_bool is None or right_bool is None:
            return None
        return left_bool, right_bool
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    if isinstance(left, (bytes, bytearray)) and isinstance(
        right, (bytes, bytearray)
    ):
        return bytes(left), bytes(right)
    # Mixed string/number: try to read the string as a number.
    if isinstance(left, str) and isinstance(right, (int, float)):
        number = _as_number(left)
        return None if number is None else (number, right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        number = _as_number(right)
        return None if number is None else (left, number)
    return None


def _as_number(text):
    try:
        stripped = text.strip()
        if re.fullmatch(r"[+-]?\d+", stripped):
            return int(stripped)
        return float(stripped)
    except (ValueError, AttributeError):
        return None


def _as_bool(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
    return None


_OPERATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare(op, left, right):
    """Apply a comparison operator with coercion; uncoercible is false."""
    if op == "like":
        return like(left, right)
    pair = comparable_pair(left, right)
    if pair is None:
        # '!=' across incomparable types is vacuously true only when
        # both sides exist but differ in kind; Lorel treats it as true.
        return op == "!="
    try:
        return _OPERATORS[op](*pair)
    except TypeError:
        return op == "!="


def like(value, pattern):
    """SQL-LIKE match with ``%`` (any run) and ``_`` (one character)."""
    if not isinstance(value, str) or not isinstance(pattern, str):
        return False
    regex = "^"
    for char in pattern:
        if char == "%":
            regex += ".*"
        elif char == "_":
            regex += "."
        else:
            regex += re.escape(char)
    regex += "$"
    return re.match(regex, value) is not None
