"""Evaluation of Lorel queries over an OEM workspace.

Semantics follow section 4.1 of the paper (and Abiteboul et al.'s Lorel):

- Each assignment of the from-clause variables that passes the where
  condition generates a value per select expression; each value is
  coerced into an OEM object.
- The result is always a collection of OEM objects wrapped in a *new*
  complex ``answer`` object (the ``&442`` of the paper), whose edges may
  point at original database objects — results are reusable in later
  queries.
- Duplicate elimination is by oid.
- Comparisons are existential over the set of objects a path reaches,
  with type coercion (:mod:`repro.lorel.coerce`).
"""

from repro.lorel.ast_nodes import (
    And,
    Comparison,
    Exists,
    Literal,
    Not,
    Or,
    Path,
    Query,
    Subquery,
    ValueList,
)
from repro.lorel.coerce import compare
from repro.lorel.errors import LorelEvaluationError
from repro.oem.graph import graph_signature
from repro.oem.paths import PathExpression


class QueryResult:
    """The outcome of one Lorel query.

    Attributes
    ----------
    answer_name:
        The workspace root name the answer object was bound to
        (``answer``, or a renamed variant when ``answer`` was taken).
    answer:
        The new complex OEM object wrapping the results.
    graph:
        The workspace graph the answer lives in.
    bindings_evaluated / bindings_passed:
        Evaluation statistics used by the optimizer benchmarks.
    """

    def __init__(self, graph, answer_name, answer, bindings_evaluated,
                 bindings_passed):
        self.graph = graph
        self.answer_name = answer_name
        self.answer = answer
        self.bindings_evaluated = bindings_evaluated
        self.bindings_passed = bindings_passed

    def __len__(self):
        return len(self.answer.references)

    def objects(self, label=None):
        """The result objects, optionally restricted to one select label."""
        refs = (
            self.answer.references
            if label is None
            else self.answer.refs_with_label(label)
        )
        return [self.graph.get(ref.oid) for ref in refs]

    def values(self, label=None):
        """Atomic values among the results (complex results are skipped)."""
        return [obj.value for obj in self.objects(label) if obj.is_atomic]

    def labels(self):
        return self.answer.labels()

    def __repr__(self):
        return (
            f"QueryResult({self.answer_name!r}, &{self.answer.oid}, "
            f"{len(self)} objects)"
        )


class Evaluator:
    """Evaluates parsed queries against a workspace graph with named roots."""

    def __init__(self, graph):
        self.graph = graph

    # -- public entry ---------------------------------------------------------

    def evaluate(self, query):
        """Evaluate ``query``; returns a :class:`QueryResult`."""
        # Subquery memoization is scoped to one evaluation: node ids
        # may be recycled between queries.
        self._subquery_cache = {}
        collected, stats = self._collect(query)
        answer = self.graph.new_complex()
        seen_pairs = set()
        seen_signatures = set()
        for label, obj in collected:
            if (label, obj.oid) in seen_pairs:
                continue  # duplicate elimination is by oid
            seen_pairs.add((label, obj.oid))
            if query.distinct:
                signature = (label,) + graph_signature(self.graph, obj)
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
            self.graph.add_edge(answer, label, obj)
        if query.order_by is not None:
            self._order_answer(answer, query.order_by)
        name = self.graph.unique_root_name("answer")
        self.graph.set_root(name, answer)
        return QueryResult(self.graph, name, answer, *stats)

    def _order_answer(self, answer, order_by):
        """Sort the answer's edges by the order-by path's value.

        Objects the path does not reach sort last; numbers sort before
        other values (numerically), everything else by string form.
        """
        expression = (
            PathExpression.parse(".".join(order_by.path.segments))
            if order_by.path.segments
            else None
        )

        def sort_key(ref):
            start = self.graph.get(ref.oid)
            if expression is None:
                candidates = [start] if start.is_atomic else []
            else:
                candidates = [
                    obj
                    for obj in expression.terminals(self.graph, start)
                    if obj.is_atomic
                ]
            if not candidates:
                return (1, 1, 0.0, "")
            value = candidates[0].value
            if isinstance(value, bool):
                return (0, 1, 0.0, str(value))
            if isinstance(value, (int, float)):
                return (0, 0, float(value), "")
            return (0, 1, 0.0, str(value))

        answer.sort_references(sort_key)
        if order_by.descending:
            answer.reverse_references()

    # -- collection (select-from-where, then set ops) -------------------------

    def _collect(self, query):
        collected, evaluated, passed = self._collect_simple(query)
        node = query
        while node.set_op is not None:
            right_query = node.set_operand
            right, right_evaluated, right_passed = self._collect_simple(
                right_query
            )
            evaluated += right_evaluated
            passed += right_passed
            collected = _apply_set_op(node.set_op, collected, right)
            node = right_query
        return collected, (evaluated, passed)

    def _collect_simple(self, query):
        collected = []
        evaluated = 0
        passed = 0
        aggregate_oids = {
            index: set() for index, item in enumerate(query.select_items)
            if item.aggregate is not None
        }
        for env in self._bindings(query.from_clauses):
            evaluated += 1
            if query.where is not None and not self._truth(query.where, env):
                continue
            passed += 1
            for index, item in enumerate(query.select_items):
                if item.aggregate is not None:
                    aggregate_oids[index].update(
                        obj.oid
                        for obj in self._resolve_path(item.path, env)
                    )
                    continue
                label = item.alias or self._derived_label(item, query)
                for obj in self._resolve_path(item.path, env):
                    collected.append((label, obj))
        # Aggregates coerce into *new* atomic objects (section 4.1:
        # "the coercion may result in the creation of new objects").
        for index, oids in aggregate_oids.items():
            item = query.select_items[index]
            label = item.alias or "count"
            collected.append((label, self.graph.new_atomic(len(oids))))
        return collected, evaluated, passed

    def _derived_label(self, item, query):
        """Label under which a selected object appears in the answer.

        A dotted path keeps its last label (``X.Name`` → ``Name``); a
        bare variable inherits the last label of its from-clause path
        (``from ANNODA-GML.Source X`` → ``Source``), matching the Lore
        convention the paper's &442 example follows.
        """
        if item.path.segments:
            return item.path.last_label
        variable = item.path.base
        for clause in query.from_clauses:
            if clause.variable == variable:
                return clause.path.last_label
        return variable

    # -- from-clause binding enumeration --------------------------------------

    def _bindings(self, from_clauses, index=0, env=None):
        env = env or {}
        if index == len(from_clauses):
            yield dict(env)
            return
        clause = from_clauses[index]
        for obj in self._resolve_path(clause.path, env):
            env[clause.variable] = obj
            yield from self._bindings(from_clauses, index + 1, env)
            del env[clause.variable]

    # -- path resolution --------------------------------------------------------

    def _resolve_path(self, path, env):
        """Objects a path reaches from its base (variable or root name)."""
        if path.base in env:
            start = env[path.base]
        elif self.graph.has_root(path.base):
            start = self.graph.root(path.base)
        else:
            raise LorelEvaluationError(
                f"unknown name {path.base!r}: not a range variable and not "
                f"a database root (known roots: {self.graph.root_names()})"
            )
        if not path.segments:
            return [start]
        expression = PathExpression.parse(".".join(path.segments))
        return expression.terminals(self.graph, start)

    # -- where-clause truth -------------------------------------------------------

    def _truth(self, node, env):
        if isinstance(node, And):
            return self._truth(node.left, env) and self._truth(node.right, env)
        if isinstance(node, Or):
            return self._truth(node.left, env) or self._truth(node.right, env)
        if isinstance(node, Not):
            return not self._truth(node.operand, env)
        if isinstance(node, Exists):
            return bool(self._resolve_path(node.path, env))
        if isinstance(node, Comparison):
            return self._comparison(node, env)
        raise LorelEvaluationError(
            f"unsupported where-clause node: {node!r}"
        )

    def _comparison(self, node, env):
        if node.op == "in":
            left_values = self._operand_values(node.left, env)
            if isinstance(node.right, Subquery):
                allowed = self._subquery_values(node.right)
            else:
                allowed = [literal.value for literal in node.right.items]
            return any(
                compare("=", value, candidate)
                for value in left_values
                for candidate in allowed
            )
        left_values = self._operand_values(node.left, env)
        right_values = self._operand_values(node.right, env)
        return any(
            compare(node.op, left, right)
            for left in left_values
            for right in right_values
        )

    def _subquery_values(self, subquery):
        """Atomic values an uncorrelated subquery yields (memoized per
        evaluation via the subquery node's identity)."""
        cache = getattr(self, "_subquery_cache", None)
        if cache is None:
            cache = self._subquery_cache = {}
        key = id(subquery)
        if key not in cache:
            collected, _stats = self._collect(subquery.query)
            cache[key] = [
                obj.value for _label, obj in collected if obj.is_atomic
            ]
        return cache[key]

    def _operand_values(self, operand, env):
        """Atomic values an operand denotes (existential semantics).

        Oid literals denote the referenced object's oid so that queries
        can reuse earlier answers by identity (section 4.1).
        """
        if isinstance(operand, Literal):
            return [operand.value]
        if isinstance(operand, ValueList):
            return [literal.value for literal in operand.items]
        if isinstance(operand, Path):
            values = []
            for obj in self._resolve_path(operand, env):
                if obj.is_atomic:
                    values.append(obj.value)
            return values
        raise LorelEvaluationError(f"unsupported operand: {operand!r}")


def _apply_set_op(op, left, right):
    """Combine two (label, object) collections by object identity."""
    right_oids = {obj.oid for _, obj in right}
    if op == "union":
        combined = list(left)
        left_oids = {obj.oid for _, obj in left}
        combined.extend(
            (label, obj) for label, obj in right if obj.oid not in left_oids
        )
        return combined
    if op == "except":
        return [(label, obj) for label, obj in left if obj.oid not in right_oids]
    if op == "intersect":
        return [(label, obj) for label, obj in left if obj.oid in right_oids]
    raise LorelEvaluationError(f"unknown set operator {op!r}")
