"""Tokenizer for the Lorel query language.

Lorel is *"a user-friendly language in the SQL and OQL style"* (paper
section 4.1).  The lexer produces a flat token stream: case-insensitive
keywords, identifiers (which may contain ``-`` so that ``ANNODA-GML``
lexes as one name, and ``%``/``#`` so path wildcards survive), string
literals in single or double quotes, numbers, oid literals ``&N``, and
punctuation/comparison operators.
"""

from dataclasses import dataclass

from repro.lorel.errors import LorelSyntaxError

KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "or",
        "not",
        "in",
        "like",
        "exists",
        "distinct",
        "as",
        "true",
        "false",
        "union",
        "except",
        "intersect",
        "order",
        "by",
        "asc",
        "desc",
        "count",
    }
)

#: Multi-character operators first so maximal munch applies.
OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")

PUNCTUATION = {
    ".": "DOT",
    ",": "COMMA",
    "(": "LPAREN",
    ")": "RPAREN",
}


@dataclass(frozen=True)
class Token:
    """One lexical token: kind, surface text, source position."""

    kind: str
    text: str
    position: int

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def _is_name_start(char):
    return char.isalpha() or char in "_%#"


def _is_name_char(char):
    return char.isalnum() or char in "_-%#:"


def tokenize(text):
    """Tokenize Lorel query text into a list of :class:`Token`.

    Raises
    ------
    LorelSyntaxError
        On any unrecognized character or unterminated string.
    """
    tokens = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in "'\"":
            literal, index = _read_string(text, index)
            tokens.append(literal)
            continue
        if char == "&":
            start = index
            index += 1
            digits = ""
            while index < length and text[index].isdigit():
                digits += text[index]
                index += 1
            if not digits:
                raise LorelSyntaxError("'&' must be followed by digits", start)
            tokens.append(Token("OID", digits, start))
            continue
        if char.isdigit() or (
            char == "-"
            and index + 1 < length
            and text[index + 1].isdigit()
            and _expects_value(tokens)
        ):
            number, index = _read_number(text, index)
            tokens.append(number)
            continue
        operator = _match_operator(text, index)
        if operator is not None:
            tokens.append(Token("OP", operator, index))
            index += len(operator)
            continue
        if char in PUNCTUATION:
            tokens.append(Token(PUNCTUATION[char], char, index))
            index += 1
            continue
        if _is_name_start(char):
            name, index = _read_name(text, index)
            tokens.append(name)
            continue
        raise LorelSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token("EOF", "", length))
    return tokens


def _expects_value(tokens):
    """True when a '-' here starts a negative number, not an identifier
    hyphen: i.e. the previous token cannot end an expression."""
    if not tokens:
        return True
    return tokens[-1].kind in ("OP", "COMMA", "LPAREN", "KEYWORD")


def _read_string(text, start):
    quote = text[start]
    index = start + 1
    chars = []
    while index < len(text):
        char = text[index]
        if char == quote:
            # Doubled quote is an escaped quote.
            if index + 1 < len(text) and text[index + 1] == quote:
                chars.append(quote)
                index += 2
                continue
            return Token("STRING", "".join(chars), start), index + 1
        chars.append(char)
        index += 1
    raise LorelSyntaxError("unterminated string literal", start)


def _read_number(text, start):
    index = start
    if text[index] == "-":
        index += 1
    while index < len(text) and text[index].isdigit():
        index += 1
    kind = "INTEGER"
    if index < len(text) and text[index] == "." and (
        index + 1 < len(text) and text[index + 1].isdigit()
    ):
        kind = "REAL"
        index += 1
        while index < len(text) and text[index].isdigit():
            index += 1
    return Token(kind, text[start:index], start), index


def _match_operator(text, start):
    for operator in OPERATORS:
        if text.startswith(operator, start):
            return operator
    return None


def _read_name(text, start):
    index = start
    while index < len(text) and _is_name_char(text[index]):
        index += 1
    word = text[start:index]
    lowered = word.lower()
    if lowered in KEYWORDS:
        return Token("KEYWORD", lowered, start), index
    return Token("NAME", word, start), index
