"""The Lorel engine: a workspace of registered databases plus query entry.

The engine owns one OEM workspace graph.  Registering a database
imports its model into the workspace under a root name (``ANNODA-GML``,
``LocusLink``, ...).  Queries run against the workspace; every answer
becomes a new uniquely named root (``answer``, ``answer2``, ...) whose
edges point at *original* workspace objects, so answers can be queried
again — the reuse property section 4.1 highlights for object ``&442``.
"""

from repro.lorel.evaluator import Evaluator
from repro.lorel.parser import parse
from repro.oem.graph import OEMGraph
from repro.oem.serialize import write_figure3


class LorelEngine:
    """Register OEM databases and evaluate Lorel query text against them."""

    def __init__(self, workspace_name="lorel-workspace"):
        self.workspace = OEMGraph(workspace_name)
        self._evaluator = Evaluator(self.workspace)

    # -- database registry -----------------------------------------------------

    def register(self, name, graph, root):
        """Import the subtree of ``graph`` at ``root`` as database ``name``.

        Returns the workspace copy of the root object.  Registering an
        existing name raises, mirroring the no-overwrite rule for
        answers.
        """
        local_root = self.workspace.import_subgraph(graph, root)
        self.workspace.set_root(name, local_root)
        return local_root

    def register_object(self, name, obj):
        """Bind an existing workspace object as a database root."""
        self.workspace.set_root(name, obj)
        return obj

    def databases(self):
        """Root names currently queryable."""
        return self.workspace.root_names()

    def root(self, name):
        return self.workspace.root(name)

    # -- querying ---------------------------------------------------------------

    def query(self, text):
        """Parse and evaluate Lorel text; returns a
        :class:`~repro.lorel.evaluator.QueryResult`."""
        return self._evaluator.evaluate(parse(text))

    def explain(self, text):
        """Parse only; returns the canonical unparsed form (used by the
        mediator's decomposer and by tests)."""
        return parse(text).unparse()

    def render_answer(self, result):
        """Figure-3 style rendering of an answer object, as in the
        paper's section 4.1 listing."""
        return write_figure3(self.workspace, result.answer_name, result.answer)
