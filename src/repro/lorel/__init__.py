"""Lorel — the query language of ANNODA (section 4.1 of the paper).

Lorel (Abiteboul, Quass, McHugh, Widom, Wiener 1997) is an SQL/OQL
style select-from-where language for semi-structured OEM data.  This
package implements the subset ANNODA uses, with Lorel's defining
semantics:

- results are always collections of OEM objects wrapped in a *new*
  ``answer`` object that later queries can reuse;
- duplicate elimination is by oid;
- comparisons are existential over path matches, with type coercion;
- path expressions tolerate irregular structure (wildcards).

Public surface: :func:`parse`, :class:`LorelEngine`,
:class:`QueryResult` and the AST node classes.
"""

from repro.lorel.ast_nodes import (
    And,
    Comparison,
    Exists,
    FromClause,
    Literal,
    Not,
    Or,
    OrderBy,
    Path,
    Query,
    SelectItem,
    Subquery,
    ValueList,
)
from repro.lorel.engine import LorelEngine
from repro.lorel.errors import LorelEvaluationError, LorelSyntaxError
from repro.lorel.evaluator import Evaluator, QueryResult
from repro.lorel.lexer import Token, tokenize
from repro.lorel.parser import parse

__all__ = [
    "And",
    "Comparison",
    "Evaluator",
    "Exists",
    "FromClause",
    "Literal",
    "LorelEngine",
    "LorelEvaluationError",
    "LorelSyntaxError",
    "Not",
    "Or",
    "OrderBy",
    "Path",
    "Subquery",
    "Query",
    "QueryResult",
    "SelectItem",
    "Token",
    "ValueList",
    "parse",
    "tokenize",
]
