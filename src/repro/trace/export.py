"""Trace export: JSON documents, golden shapes, and the rendered tree.

Three views of one span tree, used by different consumers:

- :func:`trace_to_dict` / :func:`trace_to_json` — the full trace with
  timings, for tooling and the CLI's ``explain --json``;
- :func:`trace_shape` — the *deterministic* subset (names, nesting,
  statuses, attributes, counters — no timings), which the golden-trace
  conformance suite checks in;
- :func:`render_trace` — the human tree ``explain`` prints, wall-times
  and counters inline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def _jsonable(value: Any) -> Any:
    """Attributes restricted to JSON-stable scalars and containers."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


def trace_to_dict(span: Any, timings: bool = True) -> Dict[str, Any]:
    """One span (and its subtree) as a plain dict."""
    document: Dict[str, Any] = {
        "name": span.name,
        "status": span.status,
    }
    if span.error is not None:
        document["error"] = span.error
    if timings:
        document["start"] = span.start
        document["end"] = span.end
        document["duration"] = span.duration
    if span.attributes:
        document["attributes"] = _jsonable(dict(span.attributes))
    if span.counters:
        document["counters"] = {
            name: span.counters[name] for name in sorted(span.counters)
        }
    children = [
        trace_to_dict(child, timings=timings) for child in span.children
    ]
    if children:
        document["children"] = children
    return document


def trace_to_json(span: Any, timings: bool = True, indent: int = 2) -> str:
    """The span tree as a JSON document."""
    return json.dumps(
        trace_to_dict(span, timings=timings), indent=indent, sort_keys=True
    )


def trace_shape(span: Any) -> Dict[str, Any]:
    """The timing-free, fully deterministic view of a span tree.

    Same corpus + same query + same policy ⇒ identical shape, no
    matter how the fetch pool interleaved — sibling order comes from
    reserved sequence numbers, and volatile fields (start/end/duration,
    error text) are excluded.
    """
    document = trace_to_dict(span, timings=False)

    def strip(node: Dict[str, Any]) -> None:
        node.pop("error", None)
        attributes = node.get("attributes")
        if attributes:
            attributes.pop("error", None)
        for child in node.get("children", ()):
            strip(child)

    strip(document)
    return document


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _span_line(span: Any) -> str:
    parts = [span.name]
    duration = span.duration
    if duration is not None:
        parts.append(f"{duration * 1e3:.1f}ms")
    if span.status != "ok":
        parts.append(f"status={span.status}")
        if span.error:
            parts.append(f"error={span.error!r}")
    shown_attributes = [
        f"{key}={_format_value(value)}"
        for key, value in span.attributes.items()
    ]
    if shown_attributes:
        parts.append(" ".join(shown_attributes))
    if span.counters:
        counters = " ".join(
            f"{name}={span.counters[name]}" for name in sorted(span.counters)
        )
        parts.append(f"[{counters}]")
    return "  ".join(parts)


def render_trace(span: Optional[Any]) -> str:
    """The span tree as indented text, one line per span.

    ``None`` (an untraced result) renders as a hint rather than a
    crash, so CLI plumbing can call this unconditionally.
    """
    if span is None:
        return "no trace recorded (tracing was off for this query)"
    lines: List[str] = []

    def walk(node: Any, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_span_line(node))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + _span_line(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = node.children
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(span, "", True, True)
    return "\n".join(lines)
