"""The query flight recorder: hierarchical spans over one execution.

A :class:`TraceRecorder` is scoped to one query: every pipeline stage
opens a :class:`Span` (``with recorder.span("reconcile") as span:``),
annotates it with attributes and counters, and the closed tree becomes
:attr:`IntegratedResult.trace`.  The default recorder everywhere is
the :data:`NULL_RECORDER` singleton whose spans are shared no-ops, so
tracing is zero-cost when off.

Thread correctness (DESIGN §11): the *current span* is thread-local —
each :class:`~repro.mediator.fetch.FederatedFetcher` worker builds its
fetch span on its own stack — while the span *buffer* (attachment of
children to a shared parent) is guarded by one recorder lock created
through the :mod:`repro.util.locks` seam, so the racecheck plugin
audits it.  Sibling order is decided by *sequence numbers*, not by
completion order: concurrent fetches may close in any order, yet the
exported tree is deterministic because the dispatching thread reserves
the sequence range in job order.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional

from repro.util.clock import Clock, MONOTONIC_CLOCK
from repro.util.errors import AnnodaError
from repro.util.locks import new_lock

#: Statuses a span can close with.
SPAN_STATUSES = ("ok", "error")


class TraceError(AnnodaError):
    """A span was misused (re-entered, closed twice, never opened)."""


class Span:
    """One timed stage: name, interval, attributes, counters, children.

    Spans are created by a recorder, never directly.  ``attributes``
    describe the stage (source name, purpose, plan shape); ``counters``
    carry the work accounting that folds into
    :class:`~repro.mediator.executor.ExecutionStats` — each stats
    counter lives on exactly the span that incremented it, so the tree
    totals reconcile with the flat report.
    """

    __slots__ = (
        "name", "sequence", "start", "end", "status", "error",
        "attributes", "counters", "_children",
    )

    def __init__(self, name: str, sequence: int, start: float,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.sequence = sequence
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.counters: Dict[str, int] = {}
        self._children: List["Span"] = []

    # -- annotation ----------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """Set one descriptive attribute."""
        self.attributes[key] = value

    def incr(self, counter: str, amount: int = 1) -> None:
        """Add to one work counter (created at zero on first use)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set_counter(self, counter: str, value: int) -> None:
        """Set one work counter to an absolute value (used for
        counters computed as end-of-stage deltas)."""
        self.counters[counter] = value

    # -- structure -----------------------------------------------------------

    @property
    def children(self) -> List["Span"]:
        """Child spans in deterministic (sequence) order."""
        return sorted(self._children, key=lambda span: span.sequence)

    @property
    def duration(self) -> Optional[float]:
        """Elapsed seconds, or ``None`` while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, siblings in
        sequence order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) named ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every descendant (or self) named ``name``, depth-first."""
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:
        timing = (
            f"{self.duration * 1e3:.1f}ms" if self.closed else "open"
        )
        return f"Span({self.name!r}, {timing}, {len(self._children)} children)"


class _SpanContext:
    """The context manager handed out by :meth:`TraceRecorder.span`."""

    __slots__ = ("_recorder", "_name", "_attributes", "_parent", "_span")

    def __init__(self, recorder: "TraceRecorder", name: str,
                 attributes: Optional[Dict[str, Any]],
                 parent: Optional[Span]) -> None:
        self._recorder = recorder
        self._name = name
        self._attributes = attributes
        self._parent = parent
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        if self._span is not None:
            raise TraceError(
                f"span context for {self._name!r} cannot be re-entered"
            )
        self._span = self._recorder.open_span(
            self._name, attributes=self._attributes, parent=self._parent
        )
        return self._span

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> bool:
        assert self._span is not None
        self._recorder.close_span(self._span, error=exc_value)
        return False


class TraceRecorder:
    """Query-scoped recorder building one deterministic span tree."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._lock = new_lock("TraceRecorder._lock")
        self._local = threading.local()
        self._sequence = 0
        self.root: Optional[Span] = None

    # -- the context-manager API (what instrumented code uses) ---------------

    def span(self, name: str, attributes: Optional[Dict[str, Any]] = None,
             parent: Optional[Span] = None) -> _SpanContext:
        """``with recorder.span("reconcile") as span:`` — open a child
        of the current span (or of ``parent`` when crossing threads),
        closed exactly once on exit, marked ``error`` on exception."""
        return _SpanContext(self, name, attributes, parent)

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]  # type: ignore[no-any-return]
        return None

    # -- the manual API (the fetcher's cross-thread path) --------------------

    def next_sequence(self) -> int:
        """Reserve one sibling-order slot.

        The fetcher reserves a slot per job *in job order on the
        dispatching thread* before fanning out, so the exported tree
        orders concurrent fetch spans deterministically no matter
        which worker finishes first.
        """
        with self._lock:
            self._sequence += 1
            return self._sequence

    def open_span(self, name: str,
                  attributes: Optional[Dict[str, Any]] = None,
                  parent: Optional[Span] = None,
                  sequence: Optional[int] = None) -> Span:
        """Open a span and push it on this thread's stack.

        ``parent`` overrides the thread-local current span (pass the
        dispatching thread's span when opening from a worker).  With no
        parent anywhere the span becomes the recorder's root; a second
        parentless span is a misuse.
        """
        if sequence is None:
            sequence = self.next_sequence()
        start = self.clock.now()
        span = Span(name, sequence, start, attributes)
        attach_to = parent if parent is not None else self.current()
        with self._lock:
            if attach_to is not None:
                attach_to._children.append(span)
            elif self.root is None:
                self.root = span
            else:
                raise TraceError(
                    f"span {name!r} has no parent but the trace already "
                    f"has root {self.root.name!r}"
                )
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)
        return span

    def close_span(self, span: Span,
                   error: Optional[BaseException] = None) -> Span:
        """Stamp the end time and pop the thread's stack — exactly once.

        A second close raises :class:`TraceError`: the well-formedness
        property tests pin this down even for spans that fail or
        degrade mid-stage.
        """
        if span.closed:
            raise TraceError(f"span {span.name!r} is already closed")
        if error is not None:
            span.status = "error"
            span.error = str(error) or type(error).__name__
        span.end = self.clock.now()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:
            stack.remove(span)
        return span


class _NullSpan:
    """The shared do-nothing span: every operation is a no-op."""

    __slots__ = ()

    name = "null"
    sequence = 0
    start = 0.0
    end = 0.0
    status = "ok"
    error = None
    attributes: Dict[str, Any] = {}
    counters: Dict[str, int] = {}
    children: List[Span] = []
    duration = 0.0
    closed = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def incr(self, counter: str, amount: int = 1) -> None:
        pass

    def set_counter(self, counter: str, value: int) -> None:
        pass

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> List[Span]:
        return []

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared no-op span every :data:`NULL_RECORDER` call hands out.
NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-cost recorder installed when tracing is off.

    ``span()`` returns the shared :data:`NULL_SPAN` (no allocation, no
    clock read, no locking); ``current()`` is ``None``; the root stays
    ``None`` so callers can tell "not traced" from "empty trace".
    """

    enabled = False
    root = None
    clock = MONOTONIC_CLOCK

    def span(self, name: str, attributes: Optional[Dict[str, Any]] = None,
             parent: Optional[Span] = None) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def next_sequence(self) -> int:
        return 0

    def open_span(self, name: str,
                  attributes: Optional[Dict[str, Any]] = None,
                  parent: Optional[Span] = None,
                  sequence: Optional[int] = None) -> _NullSpan:
        return NULL_SPAN

    def close_span(self, span: Any,
                   error: Optional[BaseException] = None) -> _NullSpan:
        return NULL_SPAN


#: The process-wide default recorder (tracing off).
NULL_RECORDER = NullRecorder()
