"""The metrics registry: every span counter, declared in one place.

Each counter a span may carry is registered here with the pipeline
stage (span name) that owns it and a one-line meaning.  The registry
is the contract the ANN005 lint extension enforces: a counter
registered here but never attached to a span (via ``incr`` /
``set_counter``) is a lint error — declared-but-dead accounting rots
silently otherwise.

The registered names deliberately mirror
:class:`~repro.mediator.executor.ExecutionStats`: every stats counter
becomes an attribute of exactly the span that incremented it, so
:func:`counter_totals` over a trace reconciles with the flat report
(a property test pins the equality down for random corpora/queries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Metric:
    """One declared span counter."""

    name: str
    stage: str
    description: str = ""


class MetricsRegistry:
    """Ordered, duplicate-rejecting registry of span counters."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def register(self, name: str, stage: str,
                 description: str = "") -> Metric:
        """Declare one counter owned by the ``stage`` span."""
        if name in self._metrics:
            raise ValueError(f"metric {name!r} is already registered")
        metric = Metric(name=name, stage=stage, description=description)
        self._metrics[name] = metric
        return metric

    def names(self) -> List[str]:
        return list(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def stage_of(self, name: str) -> Optional[str]:
        metric = self._metrics.get(name)
        return metric.stage if metric is not None else None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def render(self) -> str:
        """One line per metric, for docs and the CLI."""
        lines = []
        for metric in self:
            lines.append(
                f"{metric.name} [{metric.stage}] {metric.description}"
            )
        return "\n".join(lines)


#: The federation's metrics registry.  Stage names match the span
#: names the instrumented pipeline opens (see DESIGN §11).
METRICS = MetricsRegistry()

METRICS.register(
    "rows", stage="fetch-request",
    description="records one FetchReply returned",
)
METRICS.register(
    "attempts", stage="fetch-request",
    description="timed tries this fetch made (first + retries)",
)
METRICS.register(
    "retries", stage="fetch-request",
    description="attempts beyond the first (spent retry budget)",
)
METRICS.register(
    "timeouts", stage="fetch-request",
    description="attempts abandoned on timeout",
)
METRICS.register(
    "residual_evaluations", stage="fetch",
    description="mediator-side residual predicate evaluations",
)
METRICS.register(
    "concurrent_batches", stage="fetch",
    description="independent fetch batches issued concurrently",
)
METRICS.register(
    "batched_fetches", stage="fetch",
    description="batched `in` fetches issued instead of per-id loops",
)
METRICS.register(
    "enrichment_cache_hits", stage="enrichment",
    description="link-source detail served from the version-keyed cache",
)
METRICS.register(
    "anchors_considered", stage="reconcile",
    description="anchor records entering link matching",
)
METRICS.register(
    "anchors_returned", stage="reconcile",
    description="anchor records surviving every link constraint",
)
METRICS.register(
    "conflicts", stage="reconcile",
    description="semantic conflicts the reconciler observed",
)
METRICS.register(
    "repaired", stage="reconcile",
    description="conflicts the reconciliation policy repaired",
)
METRICS.register(
    "index_hits", stage="execute",
    description="native queries answered from an equality index",
)
METRICS.register(
    "scan_fetches", stage="execute",
    description="native queries answered by scanning an extent",
)
METRICS.register(
    "indexes_rebuilt", stage="execute",
    description="equality indexes (re)built by scanning this execution",
)
METRICS.register(
    "indexes_adopted", stage="execute",
    description="equality indexes adopted from a persisted snapshot",
)
METRICS.register(
    "batch_rows", stage="execute",
    description="rows that crossed the wrapper boundary in columnar "
                "RecordBatch replies",
)
METRICS.register(
    "artifact_hits", stage="execute",
    description="executor stages skipped via a content-addressed "
                "artifact",
)
METRICS.register(
    "artifact_misses", stage="execute",
    description="executor stages that probed the artifact store and "
                "had to run",
)
METRICS.register(
    "artifact_bytes", stage="execute",
    description="artifact bytes moved (read on hits + written on "
                "stores)",
)
METRICS.register(
    "shard_fans", stage="execute",
    description="logical fetches the stage scheduler fanned out "
                "across a shard grid",
)
METRICS.register(
    "replica_failovers", stage="execute",
    description="fetches a replica set answered from a sibling after "
                "the placed replica failed",
)


def counter_totals(root: Any) -> Dict[str, int]:
    """Sum every counter over a span tree (name -> total).

    Because each :class:`~repro.mediator.executor.ExecutionStats`
    counter is attached to exactly one owning span (incremented where
    the stats were), these totals reconcile with the execution report.
    """
    totals: Dict[str, int] = {}
    if root is None:
        return totals
    for span in root.walk():
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals
