"""The query flight recorder (DESIGN §11).

Hierarchical, query-scoped trace spans over the whole mediator
pipeline — decompose → optimize → per-source fetch → reconcile →
navigate — with per-span attributes and counters that reconcile with
:class:`~repro.mediator.executor.ExecutionStats`.  Tracing is off by
default (the :data:`NULL_RECORDER` makes every instrumentation point a
no-op); pass a :class:`TraceRecorder` to
:meth:`repro.core.annoda.Annoda.ask` (or run the CLI ``explain``
command) to get :attr:`IntegratedResult.trace`.
"""

from repro.trace.export import (
    render_trace,
    trace_shape,
    trace_to_dict,
    trace_to_json,
)
from repro.trace.metrics import METRICS, Metric, MetricsRegistry, counter_totals
from repro.trace.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Span,
    TraceError,
    TraceRecorder,
)

__all__ = [
    "METRICS",
    "Metric",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullRecorder",
    "Span",
    "TraceError",
    "TraceRecorder",
    "counter_totals",
    "render_trace",
    "trace_shape",
    "trace_to_dict",
    "trace_to_json",
]
