"""The PubMed-like wrapper — the plug-in source of the extensibility
experiment.

Implementing this class (field specs + web links) is *all* it takes to
federate a new source: the mediator discovers its schema via MDSM and
starts routing queries to it, which ``examples/plug_in_new_source.py``
demonstrates end to end.
"""

from repro.oem.types import OEMType
from repro.wrappers.base import Wrapper

_SELF_URL = (
    "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
    "?cmd=Retrieve&db=PubMed&list_uids={pmid}"
)
_LOCUS_URL = "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"


class PubmedLikeWrapper(Wrapper):
    """ANNODA-OML view of a
    :class:`~repro.sources.pubmedlike.CitationStore`."""

    entry_label = "Citation"
    key_label = "Pmid"

    _SPECS = {
        "Pmid": ("Pmid", OEMType.INTEGER, False,
                 "PubMed identifier of the citation"),
        "Title": ("Title", OEMType.STRING, False,
                  "article title"),
        "Journal": ("Journal", OEMType.STRING, False,
                    "journal abbreviation"),
        "Year": ("Year", OEMType.INTEGER, False,
                 "publication year"),
        "LocusID": ("LocusIDs", OEMType.INTEGER, True,
                    "loci the article annotates"),
    }

    def field_specs(self):
        return self._SPECS

    def web_links(self, record):
        links = [("Self", _SELF_URL.format(pmid=record["Pmid"]))]
        for locus_id in record.get("LocusIDs", ()):
            links.append(("LocusLink", _LOCUS_URL.format(locus_id=locus_id)))
        return links

    def citations_for_locus(self, locus_id):
        """Citation dicts annotating ``locus_id``."""
        return [
            citation.as_dict() for citation in self.source.by_locus(locus_id)
        ]
