"""Wrappers: per-source translators into ANNODA-OML.

Figure 1 of the paper places one *Wrapper* under each annotation
source.  A wrapper translates its source's records into the common
local model (ANNODA-OML, expressed in OEM — section 3.2.2), advertises
which predicates the source can evaluate natively (the optimizer's
pushdown decisions depend on this), and exposes the source's schema
elements for the mapping module to match.
"""

from repro.wrappers.base import Wrapper
from repro.wrappers.go import GoWrapper
from repro.wrappers.locuslink import LocusLinkWrapper
from repro.wrappers.omim import OmimWrapper
from repro.wrappers.pubmedlike import PubmedLikeWrapper
from repro.wrappers.schema import SchemaElement
from repro.wrappers.swissprotlike import SwissProtLikeWrapper

__all__ = [
    "GoWrapper",
    "LocusLinkWrapper",
    "OmimWrapper",
    "PubmedLikeWrapper",
    "SchemaElement",
    "SwissProtLikeWrapper",
    "Wrapper",
]


def default_wrappers(corpus, shards=1):
    """The paper's three wrappers over a generated corpus.

    ``shards > 1`` interposes a
    :class:`~repro.sources.shard.ShardedSource` facade between each
    store and its wrapper, so the stage scheduler places fetches on a
    key-range partition grid (answers are byte-identical — see the
    shard equivalence suite).
    """
    stores = [corpus.locuslink, corpus.go, corpus.omim]
    if shards > 1:
        from repro.sources.shard import ShardedSource

        stores = [ShardedSource(store, shards) for store in stores]
    return [
        LocusLinkWrapper(stores[0]),
        GoWrapper(stores[1]),
        OmimWrapper(stores[2]),
    ]
