"""The Gene Ontology wrapper."""

from repro.oem.types import OEMType
from repro.wrappers.base import Wrapper

_SELF_URL = "http://godatabase.org/cgi-bin/go.cgi?query={go_id}"


class GoWrapper(Wrapper):
    """ANNODA-OML view of a :class:`~repro.sources.go.GoOntology`.

    Beyond plain entry fetching, exposes the graph queries the
    mediator's GO-aware predicates need (ancestor closure), since the
    raw flat file cannot answer them natively.
    """

    entry_label = "Term"
    key_label = "GoID"

    _SPECS = {
        "GoID": ("GoID", OEMType.STRING, False,
                 "GO accession of the term"),
        "Name": ("Name", OEMType.STRING, False,
                 "term name describing the function/process/component"),
        "Namespace": ("Namespace", OEMType.STRING, False,
                      "GO aspect branch"),
        "Definition": ("Definition", OEMType.STRING, False,
                       "free-text definition"),
        "IsA": ("IsA", OEMType.STRING, True,
                "parent term accessions"),
        "Synonym": ("Synonyms", OEMType.STRING, True,
                    "alternate term names"),
        "Obsolete": ("Obsolete", OEMType.BOOLEAN, False,
                     "whether the term is obsolete"),
    }

    def field_specs(self):
        return self._SPECS

    def web_links(self, record):
        links = [("Self", _SELF_URL.format(go_id=record["GoID"]))]
        for parent in record.get("IsA", ()):
            links.append(("Parent", _SELF_URL.format(go_id=parent)))
        return links

    # -- graph-aware helpers (mediator-side evaluation) ------------------------

    def ancestors(self, go_id):
        """Transitive ancestors of a term (evaluated at the wrapper —
        the flat source has no native closure capability)."""
        return self.source.ancestors(go_id)

    def descendants(self, go_id):
        return self.source.descendants(go_id)

    def is_obsolete(self, go_id):
        term = self.source.get(go_id)
        return term is not None and term.obsolete

    def exists(self, go_id):
        return self.source.get(go_id) is not None
