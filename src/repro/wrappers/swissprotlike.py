"""The SwissProt-like wrapper — the model-variety source of the
paper's future work.

Proteins link to genes two ways: a curated LocusID cross-reference
(DR line) when available, and the gene symbol otherwise — so queries
through this source exercise both id joins and reconciled symbol
joins.
"""

from repro.oem.types import OEMType
from repro.wrappers.base import Wrapper

_SELF_URL = "http://www.expasy.org/cgi-bin/niceprot.pl?{accession}"
_LOCUS_URL = "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"


class SwissProtLikeWrapper(Wrapper):
    """ANNODA-OML view of a
    :class:`~repro.sources.swissprotlike.ProteinStore`."""

    entry_label = "Protein"
    key_label = "Accession"

    _SPECS = {
        "Accession": ("Accession", OEMType.STRING, False,
                      "protein accession, the primary key"),
        "ProteinName": ("ProteinName", OEMType.STRING, False,
                        "recommended protein name"),
        "Organism": ("Organism", OEMType.STRING, False,
                     "species of the protein"),
        "GeneSymbol": ("GeneSymbol", OEMType.STRING, False,
                       "symbol of the encoding gene"),
        "LocusID": ("LocusID", OEMType.INTEGER, False,
                    "curated LocusLink cross-reference (0 = none)"),
        "SequenceLength": ("SequenceLength", OEMType.INTEGER, False,
                           "amino-acid count"),
        "Keyword": ("Keywords", OEMType.STRING, True,
                    "controlled-vocabulary keywords"),
    }

    def field_specs(self):
        return self._SPECS

    def web_links(self, record):
        links = [
            ("Self", _SELF_URL.format(accession=record["Accession"]))
        ]
        if record.get("LocusID"):
            links.append(
                ("LocusLink",
                 _LOCUS_URL.format(locus_id=record["LocusID"]))
            )
        return links

    def proteins_for_locus(self, locus_id):
        """Protein dicts with a curated cross-reference to a locus."""
        return [
            record.as_dict() for record in self.source.by_locus(locus_id)
        ]
