"""Schema elements exported by wrappers for the mapping module.

MDSM matches *schema elements* of a local model against the global
model.  A :class:`SchemaElement` carries everything the similarity
metrics use: the OML label, the OEM value type, whether the label fans
out to multiple children, a prose description, and sample values drawn
from live data (instance-level evidence).
"""

from dataclasses import dataclass, field

from repro.oem.types import OEMType


@dataclass(frozen=True)
class SchemaElement:
    """One attribute of a local or global model."""

    name: str
    oem_type: OEMType
    multivalued: bool = False
    description: str = ""
    samples: tuple = ()

    def render(self):
        arity = "*" if self.multivalued else "1"
        return f"{self.name}[{arity}]: {self.oem_type}"


def elements_from_mapping(field_specs, records, sample_limit=5):
    """Build schema elements from a wrapper's field specification.

    ``field_specs`` is the wrapper's ordered mapping: OML label ->
    (source field, OEMType, multivalued, description).  Samples come
    from the first records that populate each field.
    """
    elements = []
    for label, (source_field, oem_type, multivalued, description) in (
        field_specs.items()
    ):
        samples = []
        for record in records:
            value = record.get(source_field)
            if value in (None, "", []):
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                samples.append(item)
                if len(samples) >= sample_limit:
                    break
            if len(samples) >= sample_limit:
                break
        elements.append(
            SchemaElement(
                name=label,
                oem_type=oem_type,
                multivalued=multivalued,
                description=description,
                samples=tuple(samples),
            )
        )
    return elements
