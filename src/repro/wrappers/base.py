"""The wrapper contract and shared OML-building machinery.

A concrete wrapper declares, per OML label, how it maps onto its
source's record fields; everything else — condition translation,
native fetching, OEM construction, schema export, model caching — is
shared here.
"""

import abc

from repro.oem.graph import OEMGraph
from repro.oem.types import OEMType
from repro.sources.base import NativeCondition
from repro.sources.batch import RecordBatch
from repro.util.errors import QueryError
from repro.wrappers.schema import elements_from_mapping


def _batch_capable(source):
    """True when ``source.native_query_batch`` honours whatever
    ``native_query`` does.

    The first class on the MRO defining either method decides: if it
    defines the batch twin, the pair is coherent; if it defines only
    ``native_query`` (an override without a batch twin — common in
    test doubles injecting faults), the record path must stay
    authoritative.  An instance-level ``native_query`` patch always
    wins over any class-level batch method.
    """
    if "native_query" in getattr(source, "__dict__", ()):
        return False
    for klass in type(source).__mro__:
        if "native_query_batch" in vars(klass):
            return True
        if "native_query" in vars(klass):
            return False
    return False


class Wrapper(abc.ABC):
    """Translate one :class:`~repro.sources.base.DataSource` into
    ANNODA-OML.

    Subclasses define:

    - ``entry_label`` — the OML label of one record (``Locus``,
      ``Term``, ``Disease``, ``Citation``);
    - ``field_specs()`` — ordered mapping ``OML label -> (source field,
      OEMType, multivalued, description)``;
    - ``web_links(record)`` — the record's ``Links`` entries as
      ``(label, url)`` pairs, powering interactive navigation.
    """

    #: OML label under which one record appears.
    entry_label = "Entry"

    #: OML label of the record's primary key (the label the navigator
    #: joins on and trace spans report); ``None`` for keyless sources.
    key_label = None

    def __init__(self, source):
        self.source = source
        self._model_cache = None
        # Label-resolution memos.  field_specs() is a per-class constant
        # mapping, but the mediator resolves labels per record per
        # condition in its hot loop — these memos make every resolution
        # after the first a plain dict hit.
        self._specs_memo = None
        self._source_field_memo = {}
        self._supports_memo = {}

    @property
    def name(self):
        return self.source.name

    @property
    def version(self):
        return self.source.version

    def trace_attributes(self):
        """Descriptive attributes a fetch span carries for this source.

        Kept tiny and JSON-stable: the entry label, the key label (when
        declared) and the source version — enough for ``explain`` output
        to identify the source without touching record data.
        """
        attributes = {"entry": self.entry_label, "version": self.version}
        if self.key_label is not None:
            attributes["key"] = self.key_label
        return attributes

    # -- subclass contract -----------------------------------------------------

    @abc.abstractmethod
    def field_specs(self):
        """Ordered dict: OML label -> (source field, OEMType,
        multivalued, description)."""

    @abc.abstractmethod
    def web_links(self, record):
        """(label, url) pairs for the record's ``Links`` object."""

    # -- capability translation ---------------------------------------------------

    def _specs(self):
        """Memoized :meth:`field_specs` — the mapping is a per-wrapper
        constant, so one call resolves it for the wrapper's lifetime."""
        if self._specs_memo is None:
            self._specs_memo = self.field_specs()
        return self._specs_memo

    def source_field(self, label):
        """The source record field behind an OML label (memoized)."""
        field = self._source_field_memo.get(label)
        if field is None:
            specs = self._specs()
            if label not in specs:
                raise QueryError(
                    f"wrapper {self.name!r} has no OML label {label!r}"
                )
            field = specs[label][0]
            self._source_field_memo[label] = field
        return field

    def supports(self, label, op):
        """True when a ``label op value`` predicate can be pushed down.

        ``in`` is the batched form of ``=``: a source that evaluates
        the equality natively evaluates the batch natively too.
        """
        memo_key = (label, op)
        cached = self._supports_memo.get(memo_key)
        if cached is None:
            specs = self._specs()
            if label not in specs:
                cached = False
            else:
                capabilities = self.source.capabilities()
                source_field = specs[label][0]
                if op == "in":
                    cached = (source_field, "=") in capabilities or (
                        source_field,
                        "in",
                    ) in capabilities
                else:
                    cached = (source_field, op) in capabilities
            self._supports_memo[memo_key] = cached
        return cached

    def translate_conditions(self, conditions):
        """OML-label conditions -> source-native conditions.

        Raises
        ------
        QueryError
            If any condition cannot run natively (the optimizer must
            keep it as a residual predicate instead).
        """
        translated = []
        for label, op, value in conditions:
            if not self.supports(label, op):
                raise QueryError(
                    f"{self.name} cannot push down {label} {op} {value!r}"
                )
            translated.append(
                NativeCondition(self.source_field(label), op, value)
            )
        return translated

    # -- fetching -------------------------------------------------------------------

    def fetch(self, request):
        """Records satisfying a :class:`~repro.mediator.fetch.FetchRequest`.

        The argument must be a ``FetchRequest`` (anything exposing a
        ``conditions`` attribute of ``(label, op, value)`` triples —
        duck-typed so this module never imports the mediator layer).
        Raw condition sequences raise ``TypeError``: the pre-request
        shim is gone.

        A request with ``columnar=True`` returns a
        :class:`~repro.sources.batch.RecordBatch` instead of a record
        list.  The dispatch lives *here* — not in the fetcher — so
        fault-injecting decorators (``FlakyWrapper``) that intercept
        ``fetch`` stay in the columnar path too.
        """
        conditions = getattr(request, "conditions", None)
        if conditions is None:
            raise TypeError(
                "Wrapper.fetch() requires a repro.mediator.fetch."
                "FetchRequest (raw condition sequences are no longer "
                "accepted)"
            )
        shard = getattr(request, "shard", None)
        if shard is not None:
            return self._fetch_shard(
                shard, conditions, getattr(request, "columnar", False)
            )
        if getattr(request, "columnar", False):
            return self._fetch_native_batch(conditions)
        return self._fetch_native(conditions)

    @property
    def shard_count(self):
        """The source's partition-grid width (1 when unsharded) — what
        the stage scheduler reads to plan fan-out."""
        return getattr(self.source, "shard_count", 1)

    def _fetch_shard(self, shard, conditions, columnar):
        """One partition's slice of a shard-pinned request.

        A sharded source answers from the pinned partition; an
        unsharded source placed on a grid anyway serves its whole
        extent from shard 0 and empties for the rest, so shard-order
        concatenation still reproduces the unsharded answer exactly.
        """
        translated = self.translate_conditions(conditions)
        source = self.source
        if (
            getattr(source, "shard_count", 1) > 1
            and hasattr(source, "shard_query")
        ):
            if columnar and _batch_capable(source):
                return source.shard_query_batch(shard[0], translated)
            return source.shard_query(shard[0], translated)
        if shard[0] != 0:
            return RecordBatch.empty() if columnar else []
        if columnar:
            return self._fetch_native_batch(conditions)
        return source.native_query(translated)

    def _fetch_native(self, conditions):
        """The pushdown fetch behind :meth:`fetch` (no shim, no
        deprecation — internal callers pass condition triples)."""
        return self.source.native_query(self.translate_conditions(conditions))

    def _fetch_native_batch(self, conditions):
        """Columnar pushdown: the source's ``native_query_batch`` when
        it can be trusted, else its record list pivoted into a batch
        (so custom sources stay pluggable without implementing the
        columnar contract).

        "Trusted" means ``native_query_batch`` is defined at least as
        derived as ``native_query`` on the source's class — a source
        (or test double) that overrides only ``native_query`` keeps
        its behaviour on the columnar path instead of being silently
        bypassed by an inherited or ``__getattr__``-delegated batch
        twin."""
        translated = self.translate_conditions(conditions)
        if _batch_capable(self.source):
            return self.source.native_query_batch(translated)
        return RecordBatch.from_records(self.source.native_query(translated))

    def count(self):
        return self.source.count()

    # -- OML construction -------------------------------------------------------------

    def build_entry(self, graph, record):
        """Build the OML entry object for one record dict in ``graph``.

        This is the Figure-2/Figure-3 fragment: one complex object with
        an edge per populated field, plus a ``Links`` complex object of
        ``Url``-typed children.
        """
        entry = graph.new_complex()
        for label, (source_field, oem_type, multivalued, _desc) in (
            self._specs().items()
        ):
            value = record.get(source_field)
            if value in (None, "", []):
                continue
            values = value if isinstance(value, list) else [value]
            if not multivalued and len(values) > 1:
                values = values[:1]
            for item in values:
                child = graph.new_atomic(item, oem_type)
                graph.add_edge(entry, label, child)
        links = self.web_links(record)
        if links:
            links_object = graph.new_complex()
            graph.add_edge(entry, "Links", links_object)
            for label, url in links:
                child = graph.new_atomic(url, OEMType.URL)
                graph.add_edge(links_object, label, child)
        return entry

    def build_local_model(self, graph=None, conditions=(), limit=None):
        """The full ANNODA-OML model: a root with one entry per record.

        Returns ``(graph, root)``.  When ``graph`` is omitted a fresh
        graph named after the source is used (so a fresh model's root
        takes oid 1, as in Figure 3).
        """
        graph = graph if graph is not None else OEMGraph(self.name.lower())
        root = graph.new_complex()
        records = self._fetch_native(
            getattr(conditions, "conditions", conditions)
        )
        if limit is not None:
            records = records[:limit]
        for record in records:
            entry = self.build_entry(graph, record)
            graph.add_edge(root, self.entry_label, entry)
        if not graph.has_root(self.name):
            graph.set_root(self.name, root)
        return graph, root

    def local_model(self):
        """Cached ``(graph, root)`` of the current source state.

        Rebuilt whenever the source's version counter moves — the
        federated architecture always reflects live data, which the
        freshness experiment contrasts with the warehouse baseline.
        """
        if self._model_cache is None or self._model_cache[0] != self.version:
            graph, root = self.build_local_model()
            self._model_cache = (self.version, graph, root)
        return self._model_cache[1], self._model_cache[2]

    # -- schema export ----------------------------------------------------------------

    def schema_elements(self):
        """Schema elements (with live samples) for the mapping module."""
        return elements_from_mapping(
            self.field_specs(), self.source.records()
        )

    def describe(self):
        """One-line description for the annotation-database registry."""
        return self.source.describe()
