"""The OMIM wrapper."""

from repro.oem.types import OEMType
from repro.wrappers.base import Wrapper

_SELF_URL = "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi?id={mim}"


class OmimWrapper(Wrapper):
    """ANNODA-OML view of an :class:`~repro.sources.omim.OmimStore`.

    OMIM links to genes by symbol; :meth:`symbols_with_entries` gives
    the mediator the symbol join key set, and
    :meth:`entries_for_symbol` performs the (exact, source-level)
    symbol lookup — reconciliation of case/alias variants is mediator
    work.
    """

    entry_label = "Disease"
    key_label = "MimNumber"

    _SPECS = {
        "MimNumber": ("MimNumber", OEMType.INTEGER, False,
                      "six-digit MIM number of the entry"),
        "Title": ("Title", OEMType.STRING, False,
                  "disease / phenotype title"),
        "GeneSymbol": ("GeneSymbols", OEMType.STRING, True,
                       "symbols of associated genes"),
        "Text": ("Text", OEMType.STRING, False,
                 "free-text entry body"),
        "Inheritance": ("Inheritance", OEMType.STRING, False,
                        "mode of inheritance"),
    }

    def field_specs(self):
        return self._SPECS

    def web_links(self, record):
        return [("Self", _SELF_URL.format(mim=record["MimNumber"]))]

    # -- symbol join helpers ------------------------------------------------------

    def entries_for_symbol(self, symbol):
        """Entry dicts listing exactly ``symbol`` (source semantics)."""
        return [
            record.as_dict() for record in self.source.by_gene_symbol(symbol)
        ]

    def symbols_with_entries(self):
        """Every symbol string that appears in some entry's GS field."""
        symbols = set()
        for record in self.source.all_records():
            symbols.update(record.gene_symbols)
        return symbols

    def exists(self, mim_number):
        return self.source.get(mim_number) is not None
