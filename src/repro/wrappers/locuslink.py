"""The LocusLink wrapper (Figures 2 and 3 of the paper)."""

from repro.oem.types import OEMType
from repro.wrappers.base import Wrapper

_GO_URL = "http://godatabase.org/cgi-bin/go.cgi?query={go_id}"
_OMIM_URL = "http://www.ncbi.nlm.nih.gov/entrez/dispomim.cgi?id={mim}"
_PUBMED_URL = (
    "http://www.ncbi.nlm.nih.gov/entrez/query.fcgi"
    "?cmd=Retrieve&db=PubMed&list_uids={pmid}"
)
_SELF_URL = "http://www.ncbi.nlm.nih.gov/LocusLink/LocRpt.cgi?l={locus_id}"


class LocusLinkWrapper(Wrapper):
    """ANNODA-OML view of a :class:`~repro.sources.locuslink.LocusLinkStore`.

    One entry reproduces the Figure-3 fragment: LocusID, Organism,
    Symbol, Description, Position (+ multivalued annotation fields) and
    a ``Links`` object whose ``Url`` children drive navigation.
    """

    entry_label = "Locus"
    key_label = "LocusID"

    _SPECS = {
        "LocusID": ("LocusID", OEMType.INTEGER, False,
                    "unique integer identifier of the locus"),
        "Organism": ("Organism", OEMType.STRING, False,
                     "species the locus belongs to"),
        "Symbol": ("Symbol", OEMType.STRING, False,
                   "official gene symbol"),
        "Description": ("Description", OEMType.STRING, False,
                        "official gene name / description"),
        "Position": ("Position", OEMType.STRING, False,
                     "cytogenetic map position"),
        "Alias": ("Aliases", OEMType.STRING, True,
                  "alternate gene symbols"),
        "GoID": ("GoIDs", OEMType.STRING, True,
                 "GO terms annotating the locus"),
        "OmimID": ("OmimIDs", OEMType.INTEGER, True,
                   "MIM numbers of associated disease entries"),
        "PubmedID": ("PubmedIDs", OEMType.INTEGER, True,
                     "supporting citation identifiers"),
    }

    def field_specs(self):
        return self._SPECS

    def web_links(self, record):
        links = [("Self", _SELF_URL.format(locus_id=record["LocusID"]))]
        for go_id in record.get("GoIDs", ()):
            links.append(("GO", _GO_URL.format(go_id=go_id)))
        for mim in record.get("OmimIDs", ()):
            links.append(("OMIM", _OMIM_URL.format(mim=mim)))
        for pmid in record.get("PubmedIDs", ()):
            links.append(("PubMed", _PUBMED_URL.format(pmid=pmid)))
        return links
