"""The ANNODA tool: the public facade over the whole federation.

:class:`Annoda` wires wrappers, the MDSM mapping module, the mediator,
the navigator and the question interface into the single access point
the paper describes: *"ANNODA provided a single access point for users
to pose queries and retrieve annotations"* (section 4.2).
"""

from repro.core.annoda import Annoda, AnnodaConfig

__all__ = ["Annoda", "AnnodaConfig"]
