"""The Annoda facade and its configuration."""

from dataclasses import dataclass, field
from typing import Optional

from repro.mediator.artifacts import ArtifactStore
from repro.mediator.fetch import FederationPolicy
from repro.mediator.mediator import Mediator
from repro.mediator.optimizer import OptimizerOptions
from repro.mediator.reconcile import ReconciliationPolicy, Reconciler
from repro.navigation.navigator import NavigationSession, Navigator
from repro.navigation.render import (
    render_integrated_view,
    render_integrated_view_html,
    render_object_view,
    render_query_form,
)
from repro.questions.catalog import QuestionCatalog
from repro.questions.model import BiologicalQuestion
from repro.questions.parser import QuestionParser
from repro.sources.corpus import AnnotationCorpus, CorpusParameters
from repro.wrappers import default_wrappers


@dataclass(frozen=True)
class AnnodaConfig:
    """Behaviour knobs of an :class:`Annoda` instance."""

    optimizer: OptimizerOptions = field(default_factory=OptimizerOptions)
    reconciliation: ReconciliationPolicy = field(
        default_factory=ReconciliationPolicy
    )
    #: Wrapper-boundary concurrency and fault tolerance: worker count,
    #: per-attempt timeout, retry budget/backoff, and whether a failed
    #: source degrades the answer (partial result) or aborts the query.
    federation: FederationPolicy = field(default_factory=FederationPolicy)
    #: Columnar batch execution across the wrapper boundary (the
    #: default); ``False`` restores record-at-a-time fetches.
    columnar: bool = True
    #: Enable the content-addressed stage artifact cache (repeated or
    #: overlapping queries skip finished executor stages).
    stage_artifacts: bool = False
    #: Directory backing the artifact cache on disk (implies
    #: ``stage_artifacts``); ``None`` keeps artifacts in memory only.
    artifact_dir: Optional[str] = None
    #: Key-range partitions per default source (>1 interposes a
    #: :class:`~repro.sources.shard.ShardedSource` facade; answers
    #: stay byte-identical while fetches fan out across the grid).
    shards: int = 1
    #: Interchangeable wrappers registered per default source (>1
    #: registers a :class:`~repro.mediator.replicas.ReplicaSet`, so a
    #: dead replica fails over to a sibling before the source ever
    #: degrades).
    replicas: int = 1


class Annoda:
    """The tool for integrating molecular-biological annotation data.

    Typical use::

        annoda = Annoda.with_default_sources(seed=7)
        result = annoda.ask(
            "Find LocusLink genes annotated with some GO function "
            "but not associated with some OMIM disease"
        )
        print(annoda.render_integrated_view(result, limit=10))
    """

    def __init__(self, config=None):
        self.config = config or AnnodaConfig()
        artifacts = None
        if self.config.stage_artifacts or self.config.artifact_dir:
            artifacts = ArtifactStore(directory=self.config.artifact_dir)
        self.mediator = Mediator(
            optimizer_options=self.config.optimizer,
            reconciler=Reconciler(self.config.reconciliation),
            federation=self.config.federation,
            columnar=self.config.columnar,
            artifacts=artifacts,
        )
        self.navigator = Navigator(self.mediator)
        self.parser = QuestionParser()
        self.catalog = QuestionCatalog()
        #: Set when built via :meth:`with_default_sources`.
        self.corpus = None

    # -- construction --------------------------------------------------------------

    @classmethod
    def with_default_sources(cls, seed=0, parameters=None, config=None):
        """An instance federating the paper's three sources, populated
        from a seeded synthetic corpus."""
        annoda = cls(config=config)
        annoda.corpus = AnnotationCorpus.generate(
            seed=seed, parameters=parameters or CorpusParameters()
        )
        replicas = max(1, annoda.config.replicas)
        groups = [
            default_wrappers(annoda.corpus, shards=annoda.config.shards)
            for _ in range(replicas)
        ]
        for replica_wrappers in zip(*groups):
            if len(replica_wrappers) == 1:
                annoda.add_source(replica_wrappers[0])
            else:
                annoda.add_replicas(list(replica_wrappers))
        return annoda

    @classmethod
    def from_directory(cls, directory, config=None, adopt_indexes=True):
        """An instance federating the flat-file sources persisted in
        ``directory`` (see :mod:`repro.sources.persistence`).

        ``adopt_indexes`` (default on) installs any valid persisted
        equality-index snapshots, making the cold start cheap; an
        invalid snapshot warns and rebuilds lazily instead.
        """
        from repro.sources.persistence import load_stores, wrappers_for

        annoda = cls(config=config)
        stores = load_stores(directory, adopt_indexes=adopt_indexes)
        for wrapper in wrappers_for(stores):
            annoda.add_source(wrapper)
        return annoda

    def save(self, directory, indexes=True):
        """Persist every registered source's data to ``directory`` as
        flat files in its native format, plus (by default) each
        store's equality-index snapshot for cheap cold starts."""
        from repro.sources.persistence import save_stores

        stores = [
            self.mediator.wrapper(name).source for name in self.sources()
        ]
        return save_stores(stores, directory, indexes=indexes)

    # -- source management -----------------------------------------------------------

    def add_source(self, wrapper):
        """Plug a new annotation source in (requirement 2); returns the
        MDSM correspondence set."""
        return self.mediator.register_wrapper(wrapper)

    def add_replicas(self, wrappers):
        """Plug N interchangeable wrappers of one source in as a
        replica set (fetches fail over between them before the source
        degrades); returns the MDSM correspondence set."""
        return self.mediator.register_replicas(wrappers)

    def remove_source(self, source_name):
        self.mediator.unregister_source(source_name)

    def sources(self):
        return self.mediator.sources()

    def describe_sources(self):
        """One line per registered source, from the annotation-database
        description registry."""
        return "\n".join(
            self.mediator.wrapper(name).describe()
            for name in self.mediator.sources()
        )

    # -- asking questions ----------------------------------------------------------------

    def ask(self, question, enrich_links=True, use_cache=True,
            recorder=None, budget=None):
        """Answer a biological question.

        ``question`` may be constrained-English text, a
        :class:`BiologicalQuestion`, or a
        :class:`~repro.mediator.decompose.GlobalQuery`.
        Returns an :class:`~repro.mediator.executor.IntegratedResult`.
        Cached answers are version-keyed (always as fresh as a
        recomputation); pass ``use_cache=False`` to force live
        execution, e.g. when measuring latency.

        Pass a fresh :class:`~repro.trace.recorder.TraceRecorder` as
        ``recorder`` to flight-record the query: the result's
        :attr:`~repro.mediator.executor.IntegratedResult.trace` becomes
        the closed span tree (see :meth:`trace`).

        Pass a :class:`~repro.util.cancel.RequestBudget` as ``budget``
        to bound the whole question with a deadline and a cooperative
        cancellation point; with a degrading federation policy an
        expired budget yields a partial answer instead of blocking.
        """
        if recorder is None:
            from repro.trace.recorder import NULL_RECORDER

            recorder = NULL_RECORDER
        global_query = self._to_global_query(question)
        return self.mediator.query(
            global_query, enrich_links=enrich_links, use_cache=use_cache,
            recorder=recorder, budget=budget,
        )

    def trace(self, question, enrich_links=True):
        """Answer a question with the flight recorder on.

        Convenience over :meth:`ask`: builds a fresh
        :class:`~repro.trace.recorder.TraceRecorder`, runs the query
        live (traces never replay from the result cache) and returns
        the :class:`~repro.mediator.executor.IntegratedResult` whose
        ``trace`` attribute is the recorded span tree — feed it to
        :func:`repro.trace.render_trace` or
        :func:`repro.trace.trace_to_json`.
        """
        from repro.trace.recorder import TraceRecorder

        return self.ask(
            question, enrich_links=enrich_links, recorder=TraceRecorder()
        )

    def explain(self, question):
        """The full plan story for a question: logical tree, per-rule
        fired/skipped report, execution steps, physical stage DAG."""
        return self.mediator.explain(self._to_global_query(question))

    def plan(self, question):
        """The typed :class:`~repro.mediator.plan.PhysicalPlan` for a
        question (what :meth:`explain` renders)."""
        return self.mediator.plan(self._to_global_query(question))

    def _to_global_query(self, question):
        if isinstance(question, str):
            question = self.parser.parse(question)
        if isinstance(question, BiologicalQuestion):
            return question.to_global_query()
        return question

    # -- raw Lorel ---------------------------------------------------------------------------

    def lorel(self, text):
        """Evaluate raw Lorel text against the current ANNODA-GML (the
        section-4.1 power-user path)."""
        return self.mediator.lorel_engine().query(text)

    def gml(self):
        """The current global model ``(graph, root)``."""
        return self.mediator.gml()

    # -- navigation -------------------------------------------------------------------------------

    def navigate(self, url):
        """Follow a web-link URL to its individual object view."""
        return self.navigator.follow_url(url)

    def navigation_session(self):
        """A stateful browsing session with back/forward history."""
        return NavigationSession(self.navigator)

    # -- downstream analysis ------------------------------------------------------------------

    def enrichment_analyzer(self):
        """A :class:`~repro.analysis.EnrichmentAnalyzer` over this
        federation (GO term enrichment for any answered gene set)."""
        from repro.analysis import EnrichmentAnalyzer

        return EnrichmentAnalyzer(self)

    # -- result re-organization ---------------------------------------------------------------

    def reorganize(self, result):
        """A :class:`~repro.reorganize.Reorganizer` over a result —
        pivot views, incidence matrices and exports for further
        analysis (the paper's future-work item 4)."""
        from repro.reorganize import Reorganizer

        return Reorganizer(result)

    # -- rendering (the Figure-5 views) ----------------------------------------------------------

    def render_query_form(self, question):
        if isinstance(question, str):
            question = self.parser.parse(question)
        return render_query_form(question, self.sources())

    def render_integrated_view(self, result, limit=None):
        return render_integrated_view(result, limit=limit)

    def render_integrated_view_html(self, result, limit=None):
        return render_integrated_view_html(result, limit=limit)

    def render_object_view(self, view):
        return render_object_view(view)
