"""Downstream analysis over the federation.

Section 1 of the paper argues that an integrated annotation source
*"will enable bioinformatics groups ... to participate in the data
analysis and to develop new methods and tools for such analysis"*.
This package is one such tool, built purely on the public API: GO
term-enrichment analysis (hypergeometric test with ancestor
propagation and Benjamini-Hochberg correction) over any gene set an
ANNODA query returned.
"""

from repro.analysis.enrichment import EnrichmentAnalyzer, EnrichmentResult

__all__ = ["EnrichmentAnalyzer", "EnrichmentResult"]
