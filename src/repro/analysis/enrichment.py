"""GO term-enrichment analysis over federated annotation data.

The classic workflow: given a *study set* of genes (e.g. the answer of
an ANNODA query) and a *population* (default: every locus in the gene
source), ask which GO terms annotate the study set more often than
chance.  Annotations propagate to ancestor terms (the true-path rule),
significance is the hypergeometric tail, and multiple testing is
corrected with Benjamini-Hochberg.
"""

from dataclasses import dataclass

from scipy.stats import hypergeom

from repro.mediator.fetch import FetchRequest
from repro.util.errors import QueryError


@dataclass(frozen=True)
class EnrichmentResult:
    """One tested term."""

    go_id: str
    name: str
    namespace: str
    study_count: int
    study_size: int
    population_count: int
    population_size: int
    p_value: float
    adjusted_p: float

    @property
    def fold_enrichment(self):
        study_rate = self.study_count / self.study_size
        population_rate = self.population_count / self.population_size
        return study_rate / population_rate

    def render(self):
        return (
            f"{self.go_id}  {self.name:<40.40}  "
            f"{self.study_count}/{self.study_size} vs "
            f"{self.population_count}/{self.population_size}  "
            f"p={self.p_value:.3g}  q={self.adjusted_p:.3g}  "
            f"fold={self.fold_enrichment:.2f}"
        )


class EnrichmentAnalyzer:
    """Hypergeometric GO enrichment against a live federation."""

    def __init__(self, annoda):
        self.annoda = annoda
        if "GO" not in annoda.sources() or (
            "LocusLink" not in annoda.sources()
        ):
            raise QueryError(
                "enrichment needs both LocusLink and GO federated"
            )
        self._go = annoda.mediator.wrapper("GO")
        self._locuslink = annoda.mediator.wrapper("LocusLink")

    # -- annotation gathering --------------------------------------------------

    def annotations(self, propagate=True):
        """gene id -> set of annotating GO ids (ancestors included when
        ``propagate``), obsolete and dangling annotations dropped."""
        per_gene = {}
        for record in self._locuslink.fetch(
            FetchRequest(purpose="annotation-gather")
        ):
            terms = set()
            for go_id in record.get("GoIDs", ()):
                if not self._go.exists(go_id) or self._go.is_obsolete(
                    go_id
                ):
                    continue
                terms.add(go_id)
                if propagate:
                    terms.update(self._go.ancestors(go_id))
            per_gene[record["LocusID"]] = terms
        return per_gene

    # -- the test ------------------------------------------------------------------

    def go_enrichment(self, study_genes, population_genes=None,
                      propagate=True, min_study_count=2):
        """Enrichment results for every qualifying term, most
        significant first.

        Parameters
        ----------
        study_genes:
            The gene set under study (iterable of LocusIDs; unknown ids
            are rejected).
        population_genes:
            The background (default: every locus).
        propagate:
            Apply the true-path rule (annotations count for ancestors).
        min_study_count:
            Terms annotating fewer study genes are not tested.
        """
        per_gene = self.annotations(propagate=propagate)
        study = set(study_genes)
        unknown = study - set(per_gene)
        if unknown:
            raise QueryError(
                f"study genes not in the federation: {sorted(unknown)[:5]}"
            )
        population = (
            set(population_genes)
            if population_genes is not None
            else set(per_gene)
        )
        if not study:
            raise QueryError("empty study set")
        if not study <= population:
            raise QueryError("study set must be within the population")

        study_counts = {}
        population_counts = {}
        for gene, terms in per_gene.items():
            in_study = gene in study
            if gene not in population:
                continue
            for term in terms:
                population_counts[term] = (
                    population_counts.get(term, 0) + 1
                )
                if in_study:
                    study_counts[term] = study_counts.get(term, 0) + 1

        tested = []
        for term, count in sorted(study_counts.items()):
            if count < min_study_count:
                continue
            p_value = float(
                hypergeom.sf(
                    count - 1,
                    len(population),
                    population_counts[term],
                    len(study),
                )
            )
            tested.append((term, count, population_counts[term], p_value))

        adjusted = _benjamini_hochberg([p for *_rest, p in tested])
        results = []
        for (term, count, population_count, p_value), q_value in zip(
            tested, adjusted
        ):
            term_record = self._go.source.get(term)
            results.append(
                EnrichmentResult(
                    go_id=term,
                    name=term_record.name,
                    namespace=term_record.namespace,
                    study_count=count,
                    study_size=len(study),
                    population_count=population_count,
                    population_size=len(population),
                    p_value=p_value,
                    adjusted_p=q_value,
                )
            )
        results.sort(key=lambda result: (result.p_value, result.go_id))
        return results

    def enrich_result(self, integrated_result, **kwargs):
        """Convenience: enrichment of an ANNODA answer's gene set."""
        return self.go_enrichment(integrated_result.gene_ids(), **kwargs)


def _benjamini_hochberg(p_values):
    """BH-adjusted q-values, preserving input order."""
    count = len(p_values)
    if count == 0:
        return []
    order = sorted(range(count), key=lambda index: p_values[index])
    adjusted = [0.0] * count
    smallest_so_far = 1.0
    for rank_from_end, index in enumerate(reversed(order)):
        rank = count - rank_from_end
        candidate = p_values[index] * count / rank
        smallest_so_far = min(smallest_so_far, candidate)
        adjusted[index] = min(1.0, smallest_so_far)
    return adjusted
